//! Throughput-recovery budget for the gray-failure defense.
//!
//! The robustness claim (DESIGN.md §11): a fleet carrying a
//! browned-out rank does not stay at the slow rank's pace — the health
//! monitor names the rank, the escalation ladder quarantines it, and
//! once the keep-limping-vs-evict pricing flips, the live rank is
//! evicted and training returns to full speed. This bench measures that
//! end to end on a real 4-rank world:
//!
//! 1. **healthy baseline** — 4 ranks, no faults: median step time;
//! 2. **brownout run** — rank 3 limps (~5 ms per collective), health +
//!    pricing armed: the fleet limps, detects, quarantines, evicts, and
//!    the bench takes the median of the first `RECOVERY_STEPS` steps
//!    *after* the eviction lands;
//! 3. **budget** — recovered step rate must be ≥ `RECOVERY_BUDGET`
//!    (90%) of the healthy-fleet step rate;
//! 4. **bit identity** — the survivors' final weights must equal a
//!    fresh 3-rank run resumed from the same snapshot (the eviction is
//!    a correct reconfiguration, not just a fast one).
//!
//! Results go to `BENCH_health.json` (override with the first
//! positional argument). Exits non-zero when recovery misses the
//! budget or bit identity fails.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use collectives::{run_world, Brownout, CommError, CommWorld, FaultInjector};
use fsmoe::checkpoint::LayerCheckpoint;
use fsmoe::config::MoeConfig;
use fsmoe::MoeError;
use jsonio::Json;
use models::{ElasticPolicy, ElasticTrainer, GrayFailurePolicy, HealthMonitor, HealthPolicy};
use tensor::{Tensor, TensorRng};

const SEED: u64 = 7;
const WORLD: usize = 4;
const VICTIM: usize = 3;
const LR: f32 = 0.05;
/// Steps timed for the healthy baseline (after warmup).
const HEALTHY_STEPS: usize = 24;
/// Post-eviction steps whose median must meet the budget — the "within
/// N steps of detection" window.
const RECOVERY_STEPS: usize = 20;
/// Recovered step rate must reach this fraction of the healthy rate.
const RECOVERY_BUDGET: f64 = 0.9;
const BROWNOUT_MS: u64 = 5;

fn config() -> MoeConfig {
    // 12 experts: 3 per rank healthy, 4 per rank after the eviction —
    // divisible both ways so the fresh-world comparison can build.
    MoeConfig::builder()
        .batch_size(1)
        .seq_len(8)
        .embed_dim(16)
        .hidden_dim(32)
        .num_experts(12)
        .top_k(2)
        .no_drop()
        .build()
        .expect("bench config")
}

fn rank_data(cfg: &MoeConfig, old_rank: usize) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seed_from(1000 + old_rank as u64);
    let x = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    let t = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    (x, t)
}

fn route_rng_for(old_rank: usize) -> TensorRng {
    TensorRng::seed_from(7000 + old_rank as u64)
}

/// Snapshot only at step 0 so the eviction's rollback always lands on
/// the initial state (the comparable snapshot for the fresh world).
fn policy() -> ElasticPolicy {
    ElasticPolicy {
        snapshot_interval: 100_000,
        ..ElasticPolicy::default()
    }
}

fn health_policy() -> HealthPolicy {
    HealthPolicy {
        window: 2,
        threshold: 1.5,
        sustain: 2,
        cooldown: 1,
    }
}

fn gray_policy() -> GrayFailurePolicy {
    GrayFailurePolicy {
        costs: simnet::Testbed::a().costs,
        horizon_steps: 100_000,
        moved_bytes: 1e6,
        checkpoint_bytes: 4e6,
    }
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Healthy 4-rank fleet: median step time in ms (max across ranks — the
/// fleet moves at its slowest member's pace).
fn healthy_baseline(cfg: &MoeConfig) -> f64 {
    let results = run_world(CommWorld::new(WORLD), {
        let cfg = cfg.clone();
        move |comm| {
            let rank = comm.rank();
            let mut trainer = ElasticTrainer::new(&cfg, comm, SEED, route_rng_for(rank), policy())
                .expect("baseline trainer");
            let (x, t) = rank_data(&cfg, rank);
            for _ in 0..4 {
                trainer.train_step(&x, &t, LR).expect("warmup step");
            }
            let mut steps = Vec::new();
            for _ in 0..HEALTHY_STEPS {
                let start = Instant::now();
                trainer.train_step(&x, &t, LR).expect("baseline step");
                steps.push(start.elapsed().as_secs_f64() * 1e3);
            }
            median_ms(&mut steps)
        }
    });
    results.into_iter().fold(0.0f64, f64::max)
}

/// What a survivor of the brownout run reports.
struct Recovery {
    checkpoint: LayerCheckpoint,
    evict_step: usize,
    limp_ms: f64,
    recovered_ms: f64,
    quarantines: usize,
    migrations: usize,
}

/// The gray-failure run: rank `VICTIM` browned out, defense armed.
/// Survivors run `RECOVERY_STEPS` past the eviction and report limp and
/// recovered medians; the victim self-evicts and reports `None`.
fn brownout_run(cfg: &MoeConfig) -> Vec<Option<Recovery>> {
    let spec = Brownout::steady(Duration::from_millis(BROWNOUT_MS));
    let world = CommWorld::new(WORLD)
        .with_deadline(Duration::from_secs(5))
        .with_faults(FaultInjector::new().brownout(VICTIM, spec, 11));
    run_world(world, {
        let cfg = cfg.clone();
        move |comm| {
            let rank = comm.rank();
            let mut trainer = ElasticTrainer::new(&cfg, comm, SEED, route_rng_for(rank), policy())
                .expect("gray trainer")
                .with_health(HealthMonitor::new(WORLD, health_policy()), gray_policy());
            let (x, t) = rank_data(&cfg, rank);
            let mut limp = Vec::new();
            let mut recovered = Vec::new();
            let mut evict_step = 0usize;
            loop {
                let start = Instant::now();
                match trainer.train_step(&x, &t, LR) {
                    Ok(_) => {}
                    Err(MoeError::Comm(CommError::RankDown { rank: r })) if r == rank => {
                        assert_eq!(rank, VICTIM, "only the slow rank is priced out");
                        return None;
                    }
                    Err(e) => panic!("rank {rank}: {e:?}"),
                }
                let ms = start.elapsed().as_secs_f64() * 1e3;
                if trainer.evictions() == 0 {
                    limp.push(ms);
                } else {
                    if evict_step == 0 {
                        evict_step = trainer.step();
                        // The step that drove the eviction paid the
                        // whole reconfiguration + replay; the recovery
                        // window starts at the next step.
                        continue;
                    }
                    recovered.push(ms);
                    if recovered.len() >= RECOVERY_STEPS {
                        break;
                    }
                }
            }
            Some(Recovery {
                checkpoint: trainer.full_checkpoint().expect("survivor checkpoint"),
                evict_step,
                limp_ms: median_ms(&mut limp),
                recovered_ms: median_ms(&mut recovered),
                quarantines: trainer.quarantines(),
                migrations: trainer.migrations(),
            })
        }
    })
}

/// Fresh 3-rank run from the initial snapshot to `total` steps — the
/// bit-identity reference (victim was the highest rank, so survivor
/// numbering is unchanged).
fn fresh_reference(cfg: &MoeConfig, total: usize) -> LayerCheckpoint {
    let initial = run_world(CommWorld::new(WORLD), {
        let cfg = cfg.clone();
        move |comm| {
            let rank = comm.rank();
            let trainer = ElasticTrainer::new(&cfg, comm, SEED, route_rng_for(rank), policy())
                .expect("snapshot trainer");
            trainer.full_checkpoint().expect("initial checkpoint")
        }
    });
    let results = run_world(CommWorld::new(WORLD - 1), {
        let cfg = cfg.clone();
        let snapshot = initial[0].clone();
        move |comm| {
            let old_rank = comm.rank();
            let mut trainer = ElasticTrainer::resume(
                &cfg,
                comm.clone(),
                SEED,
                &snapshot,
                route_rng_for(old_rank),
                0,
                policy(),
            )
            .expect("fresh resume");
            let (x, t) = rank_data(&cfg, old_rank);
            while trainer.step() < total {
                trainer.train_step(&x, &t, LR).expect("fresh step");
            }
            trainer.full_checkpoint().expect("fresh checkpoint")
        }
    });
    assert_eq!(results[0], results[1], "fresh world must agree");
    assert_eq!(results[1], results[2], "fresh world must agree");
    results.into_iter().next().expect("three fresh ranks")
}

fn main() {
    let out_path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_health.json").to_string()
        });

    let cfg = config();
    let healthy_ms = healthy_baseline(&cfg);
    println!("healthy 4-rank fleet: median step {healthy_ms:.3} ms");

    let results = brownout_run(&cfg);
    assert!(
        results[VICTIM].is_none(),
        "the browned-out rank must be evicted"
    );
    let survivors: Vec<Recovery> = results.into_iter().flatten().collect();
    assert_eq!(survivors.len(), WORLD - 1, "every healthy rank must finish");
    let evict_step = survivors[0].evict_step;
    let limp_ms = survivors.iter().map(|s| s.limp_ms).fold(0.0f64, f64::max);
    let recovered_ms = survivors
        .iter()
        .map(|s| s.recovered_ms)
        .fold(0.0f64, f64::max);
    for s in &survivors {
        assert_eq!(s.evict_step, evict_step, "SPMD: one agreed eviction step");
        assert!(s.quarantines >= 1, "quarantine precedes the eviction");
        assert!(s.migrations >= 1, "the quarantine drained a hot expert");
    }

    // Step-rate recovery: healthy/limp/recovered medians compare step
    // rates directly (same per-rank batch; a step is a step).
    let limp_ratio = healthy_ms / limp_ms;
    let recovery_ratio = healthy_ms / recovered_ms;
    println!(
        "limping fleet: median step {limp_ms:.3} ms ({:.1}% of healthy rate)",
        limp_ratio * 100.0
    );
    println!(
        "evicted at step {evict_step}; recovered: median step {recovered_ms:.3} ms \
         over the next {RECOVERY_STEPS} steps ({:.1}% of healthy rate, budget {:.0}%)",
        recovery_ratio * 100.0,
        RECOVERY_BUDGET * 100.0
    );

    // Bit identity: the recovered run equals a fresh 3-rank world from
    // the same snapshot, run to the same step count.
    let total_steps = evict_step + RECOVERY_STEPS;
    let fresh = fresh_reference(&cfg, total_steps);
    let identical = survivors.iter().all(|s| s.checkpoint == fresh);
    println!("bit identity vs fresh 3-rank world at step {total_steps}: {identical}");

    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = Json::obj(vec![
        ("bench", Json::from("health")),
        ("unix_time", Json::from(unix_time as f64)),
        ("world", Json::from(WORLD as f64)),
        ("brownout_ms", Json::from(BROWNOUT_MS as f64)),
        ("healthy_step_ms", Json::from(healthy_ms)),
        ("limp_step_ms", Json::from(limp_ms)),
        ("recovered_step_ms", Json::from(recovered_ms)),
        ("limp_ratio", Json::from(limp_ratio)),
        ("recovery_ratio", Json::from(recovery_ratio)),
        ("recovery_budget", Json::from(RECOVERY_BUDGET)),
        ("recovery_window_steps", Json::from(RECOVERY_STEPS as f64)),
        ("evict_step", Json::from(evict_step as f64)),
        ("bit_identical", Json::from(f64::from(u8::from(identical)))),
    ]);
    let text = json.to_string().expect("all benchmark numbers are finite");
    std::fs::write(&out_path, text + "\n").expect("write baseline json");
    println!("wrote {out_path}");

    assert!(
        identical,
        "survivors must match the fresh small world bit-for-bit"
    );
    assert!(
        recovery_ratio >= RECOVERY_BUDGET,
        "post-eviction step rate must recover ≥ {:.0}% of the healthy fleet \
         (got {:.1}%: healthy {healthy_ms:.3} ms vs recovered {recovered_ms:.3} ms)",
        RECOVERY_BUDGET * 100.0,
        recovery_ratio * 100.0
    );
}
