//! Pure-std benchmark harness for the hot paths the paper quantifies in
//! §6.2, plus the serial-vs-parallel compute baseline introduced with the
//! threaded GEMM path.
//!
//! Runs under `cargo bench` (the `[[bench]]` target sets `harness = false`,
//! so this `main` owns the process). It times:
//!
//! * blocked GEMM, serial (`threads = 1`) vs the `TENSOR_THREADS` fan-out,
//!   over a size sweep straddling the parallel threshold;
//! * an end-to-end GShard MoE layer forward, serial vs parallel — the
//!   serial leg re-executes this binary with `TENSOR_THREADS=1` because
//!   the thread count is latched once per process;
//! * the control-plane kernels (pipeline-degree solver, α–β model fit)
//!   the paper benchmarks against SLSQP.
//!
//! Results are printed as a table and written to `BENCH_compute.json`
//! (override with the first positional argument) so successive runs can
//! be diffed.

use std::process::Command;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use bench::table4_grid;
use jsonio::Json;
use numopt::LinearFit;
use profiler::microbench::{comm_message_sizes, profile_op};
use scheduler::{find_optimal_pipeline_degree, MoePerfModel, Phase};
use simnet::Testbed;
use tensor::TensorRng;

/// Best-of-`runs` wall time of `f`, in milliseconds.
fn best_of_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Square GEMM dimensions for the sweep; 64 sits below the
/// `PAR_MIN_MACS` serial-fallback threshold, the rest above it.
const GEMM_DIMS: [usize; 4] = [64, 128, 256, 384];
const GEMM_RUNS: usize = 5;
const MOE_RUNS: usize = 5;

fn bench_gemm(threads: usize) -> Vec<Json> {
    let mut rng = TensorRng::seed_from(0xC0FFEE);
    let mut rows = Vec::new();
    println!("GEMM serial vs parallel ({threads} threads):");
    println!(
        "  {:>5}  {:>12}  {:>12}  {:>8}  {:>10}",
        "dim", "serial ms", "parallel ms", "speedup", "GFLOP/s"
    );
    for &d in &GEMM_DIMS {
        let a = rng.uniform(&[d, d], -1.0, 1.0);
        let b = rng.uniform(&[d, d], -1.0, 1.0);
        let serial_ms = best_of_ms(GEMM_RUNS, || {
            std::hint::black_box(a.matmul_with_threads(&b, 1).expect("gemm").data()[0]);
        });
        let parallel_ms = best_of_ms(GEMM_RUNS, || {
            std::hint::black_box(a.matmul_with_threads(&b, threads).expect("gemm").data()[0]);
        });
        let flops = 2.0 * (d as f64).powi(3);
        let gflops = flops / (parallel_ms * 1e-3) / 1e9;
        let speedup = serial_ms / parallel_ms;
        println!(
            "  {d:>5}  {serial_ms:>12.4}  {parallel_ms:>12.4}  {speedup:>7.2}x  {gflops:>10.2}"
        );
        rows.push(Json::obj(vec![
            ("dim", Json::from(d)),
            ("serial_ms", Json::from(serial_ms)),
            ("parallel_ms", Json::from(parallel_ms)),
            ("speedup", Json::from(speedup)),
            ("gflops_parallel", Json::from(gflops)),
        ]));
    }
    rows
}

/// Builds the end-to-end layer and times one forward, at whatever thread
/// count this process latched from `TENSOR_THREADS`.
fn moe_forward_ms() -> (f64, usize, usize) {
    let mut rng = TensorRng::seed_from(7);
    let cfg = fsmoe::config::MoeConfig::builder()
        .batch_size(1)
        .seq_len(512)
        .embed_dim(128)
        .hidden_dim(256)
        .num_experts(8)
        .top_k(2)
        .build()
        .expect("static config is valid");
    let mut layer = fsmoe::layer::MoeLayer::gshard(&cfg, &mut rng).expect("layer builds");
    let input = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    let ms = best_of_ms(MOE_RUNS, || {
        let mut r = TensorRng::seed_from(1);
        std::hint::black_box(layer.forward(&input, &mut r).expect("forward"));
    });
    (ms, cfg.tokens(), cfg.num_experts)
}

/// Serial MoE reference: the per-process `TENSOR_THREADS` latch means the
/// 1-thread leg needs its own process. Falls back to the parallel figure
/// when re-execution is unavailable (then serial == parallel anyway on a
/// single-core box).
fn moe_serial_ms(parallel_ms: f64) -> f64 {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(_) => return parallel_ms,
    };
    let out = Command::new(exe)
        .arg("--moe-serial")
        .env("TENSOR_THREADS", "1")
        .output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout)
            .trim()
            .parse()
            .unwrap_or(parallel_ms),
        _ => parallel_ms,
    }
}

fn bench_control_plane() -> Vec<(&'static str, f64)> {
    // §6.2: the SLSQP solve averages 193 ms per configuration; our exact
    // solver should be orders of magnitude faster
    let tb = Testbed::a();
    let specs: Vec<MoePerfModel> = table4_grid(&tb)
        .iter()
        .step_by(97)
        .map(|cfg| {
            let s = cfg.layer_spec(&tb).expect("valid").moe;
            MoePerfModel::new(
                &tb.costs,
                s.n_a2a,
                s.n_ag,
                s.n_rs,
                s.n_exp,
                s.gemms,
                Phase::Backward,
                1.0,
            )
        })
        .collect();
    let solver_ms = best_of_ms(GEMM_RUNS, || {
        for m in &specs {
            std::hint::black_box(find_optimal_pipeline_degree(std::hint::black_box(m)));
        }
    });

    // §6.2: least-squares fitting takes <10 ms in the paper
    let tb = Testbed::b();
    let p = profile_op("AlltoAll", &tb.costs.a2a, &comm_message_sizes(), 0.01, 5, 3);
    let xs: Vec<f64> = p.samples.iter().map(|s| s.0).collect();
    let ys: Vec<f64> = p.samples.iter().map(|s| s.1).collect();
    let fit_ms = best_of_ms(GEMM_RUNS, || {
        std::hint::black_box(LinearFit::fit(&xs, &ys).expect("fit"));
    });
    vec![
        ("find_optimal_pipeline_degree_sweep", solver_ms),
        ("linear_fit_24_points", fit_ms),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--moe-serial") {
        // child mode: print one number and exit
        let (ms, _, _) = moe_forward_ms();
        println!("{ms}");
        return;
    }
    // default to the workspace root regardless of cargo's bench cwd
    let out_path = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .cloned()
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compute.json").to_string()
        });

    let hardware = tensor::par::hardware_threads();
    let threads = tensor::par::num_threads();
    println!("hardware threads: {hardware}, effective TENSOR_THREADS: {threads}\n");

    let gemm_rows = bench_gemm(threads);

    let (moe_parallel_ms, tokens, experts) = moe_forward_ms();
    let moe_serial_ms = moe_serial_ms(moe_parallel_ms);
    let moe_speedup = moe_serial_ms / moe_parallel_ms;
    let tokens_per_s = tokens as f64 / (moe_parallel_ms * 1e-3);
    println!("\nMoE layer forward ({tokens} tokens, {experts} experts):");
    println!("  serial {moe_serial_ms:.3} ms, parallel {moe_parallel_ms:.3} ms ({moe_speedup:.2}x), {tokens_per_s:.0} tokens/s");

    let control = bench_control_plane();
    println!("\ncontrol plane:");
    for (name, ms) in &control {
        println!("  {name}: {ms:.4} ms");
    }

    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = Json::obj(vec![
        ("bench", Json::from("compute")),
        ("unix_time", Json::from(unix_time as f64)),
        ("hardware_threads", Json::from(hardware)),
        ("tensor_threads", Json::from(threads)),
        ("gemm", Json::from(gemm_rows)),
        (
            "moe_layer",
            Json::obj(vec![
                ("tokens", Json::from(tokens)),
                ("experts", Json::from(experts)),
                ("serial_ms", Json::from(moe_serial_ms)),
                ("parallel_ms", Json::from(moe_parallel_ms)),
                ("speedup", Json::from(moe_speedup)),
                ("tokens_per_s_parallel", Json::from(tokens_per_s)),
            ]),
        ),
        (
            "control_plane",
            Json::obj(
                control
                    .iter()
                    .map(|(name, ms)| (*name, Json::from(*ms)))
                    .collect::<Vec<_>>(),
            ),
        ),
    ]);
    let text = json.to_string().expect("all benchmark numbers are finite");
    std::fs::write(&out_path, text + "\n").expect("write baseline json");
    println!("\nwrote {out_path}");
}
