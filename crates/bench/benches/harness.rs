//! Pure-std benchmark harness for the hot paths the paper quantifies in
//! §6.2, plus the packed-GEMM compute baseline.
//!
//! Runs under `cargo bench` (the `[[bench]]` target sets `harness = false`,
//! so this `main` owns the process). It times:
//!
//! * the packed GEMM over a size sweep straddling the parallel
//!   threshold, at several *explicit* thread counts via
//!   [`Tensor::matmul_with_threads`] — never via `TENSOR_THREADS`, whose
//!   `OnceLock` latch is read once per process and would turn a sweep
//!   into N measurements of the same count (the old harness did exactly
//!   that and recorded `speedup ≈ 1` at `hardware_threads: 1`);
//! * an end-to-end GShard MoE layer forward at the same explicit thread
//!   counts via [`MoeLayer::set_compute_threads`] — no child-process
//!   re-exec needed;
//! * the control-plane kernels (pipeline-degree solver, α–β model fit)
//!   the paper benchmarks against SLSQP.
//!
//! Results are printed as a table and written to `BENCH_compute.json`
//! (override with the first positional argument) so successive runs can
//! be diffed. Like the observability bench, this binary enforces its own
//! budget: a GFLOPS floor per GEMM dim (`GFLOPS_FLOORS`) that the packed
//! microkernel must clear, so a kernel regression fails `ci.sh` instead
//! of silently shipping.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use bench::table4_grid;
use jsonio::Json;
use numopt::LinearFit;
use profiler::microbench::{comm_message_sizes, profile_op};
use scheduler::{find_optimal_pipeline_degree, MoePerfModel, Phase};
use simnet::Testbed;
use tensor::TensorRng;

/// Best-of-`runs` wall time of `f`, in milliseconds.
fn best_of_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Square GEMM dimensions for the sweep; 64 sits below the
/// `PAR_MIN_MACS` serial-fallback threshold, the rest above it.
const GEMM_DIMS: [usize; 4] = [64, 128, 256, 384];
/// Explicit worker counts for both sweeps. On a single-core box the
/// extra counts measure banding overhead rather than speedup; the floor
/// below is taken over the best count per dim, so that is fine.
const THREAD_SWEEP: [usize; 3] = [1, 2, 4];
/// Minimum best-thread-count GFLOPS per dim, `(dim, floor)`. The packed
/// AVX2 microkernel measures ~60–70 GFLOPS at dims ≥ 256 on the CI box;
/// the pre-rewrite blocked kernel measured ~18. The floor is set at 2×
/// the old kernel with headroom for a noisy shared host: dropping below
/// it means the packed kernel (or its dispatch) regressed.
const GFLOPS_FLOORS: [(usize, f64); 2] = [(256, 36.0), (384, 36.0)];
const GEMM_RUNS: usize = 5;
const MOE_RUNS: usize = 5;

/// Times the square GEMM at every dim × thread count; returns the JSON
/// rows plus `(dim, best_gflops)` for the floor check.
fn bench_gemm() -> (Vec<Json>, Vec<(usize, f64)>) {
    let mut rng = TensorRng::seed_from(0xC0FFEE);
    let mut rows = Vec::new();
    let mut best_per_dim = Vec::new();
    println!("GEMM thread sweep (explicit matmul_with_threads):");
    println!(
        "  {:>5}  {:>7}  {:>12}  {:>8}  {:>10}",
        "dim", "threads", "ms", "speedup", "GFLOP/s"
    );
    for &d in &GEMM_DIMS {
        let a = rng.uniform(&[d, d], -1.0, 1.0);
        let b = rng.uniform(&[d, d], -1.0, 1.0);
        let flops = 2.0 * (d as f64).powi(3);
        let mut sweep = Vec::new();
        let mut serial_ms = f64::NAN;
        let mut best_gflops = 0.0f64;
        for &t in &THREAD_SWEEP {
            let ms = best_of_ms(GEMM_RUNS, || {
                std::hint::black_box(a.matmul_with_threads(&b, t).expect("gemm").data()[0]);
            });
            if t == 1 {
                serial_ms = ms;
            }
            let gflops = flops / (ms * 1e-3) / 1e9;
            best_gflops = best_gflops.max(gflops);
            let speedup = serial_ms / ms;
            println!("  {d:>5}  {t:>7}  {ms:>12.4}  {speedup:>7.2}x  {gflops:>10.2}");
            sweep.push(Json::obj(vec![
                ("threads", Json::from(t)),
                ("ms", Json::from(ms)),
                ("speedup_vs_serial", Json::from(speedup)),
                ("gflops", Json::from(gflops)),
            ]));
        }
        best_per_dim.push((d, best_gflops));
        rows.push(Json::obj(vec![
            ("dim", Json::from(d)),
            ("serial_ms", Json::from(serial_ms)),
            ("best_gflops", Json::from(best_gflops)),
            ("sweep", Json::from(sweep)),
        ]));
    }
    (rows, best_per_dim)
}

/// Times one end-to-end MoE forward per explicit thread count; returns
/// the JSON sweep plus `(tokens, experts, best_ms)`.
fn bench_moe() -> (Vec<Json>, usize, usize, f64) {
    let mut rng = TensorRng::seed_from(7);
    let cfg = fsmoe::config::MoeConfig::builder()
        .batch_size(1)
        .seq_len(512)
        .embed_dim(128)
        .hidden_dim(256)
        .num_experts(8)
        .top_k(2)
        .build()
        .expect("static config is valid");
    let mut layer = fsmoe::layer::MoeLayer::gshard(&cfg, &mut rng).expect("layer builds");
    let input = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    let mut sweep = Vec::new();
    let mut serial_ms = f64::NAN;
    let mut best_ms = f64::INFINITY;
    println!(
        "\nMoE layer forward ({} tokens, {} experts):",
        cfg.tokens(),
        cfg.num_experts
    );
    for &t in &THREAD_SWEEP {
        layer.set_compute_threads(Some(t));
        let ms = best_of_ms(MOE_RUNS, || {
            let mut r = TensorRng::seed_from(1);
            std::hint::black_box(layer.forward(&input, &mut r).expect("forward"));
        });
        if t == 1 {
            serial_ms = ms;
        }
        best_ms = best_ms.min(ms);
        let speedup = serial_ms / ms;
        let tokens_per_s = cfg.tokens() as f64 / (ms * 1e-3);
        println!("  threads {t}: {ms:.3} ms ({speedup:.2}x vs serial), {tokens_per_s:.0} tokens/s");
        sweep.push(Json::obj(vec![
            ("threads", Json::from(t)),
            ("ms", Json::from(ms)),
            ("speedup_vs_serial", Json::from(speedup)),
            ("tokens_per_s", Json::from(tokens_per_s)),
        ]));
    }
    (sweep, cfg.tokens(), cfg.num_experts, best_ms)
}

fn bench_control_plane() -> Vec<(&'static str, f64)> {
    // §6.2: the SLSQP solve averages 193 ms per configuration; our exact
    // solver should be orders of magnitude faster
    let tb = Testbed::a();
    let specs: Vec<MoePerfModel> = table4_grid(&tb)
        .iter()
        .step_by(97)
        .map(|cfg| {
            let s = cfg.layer_spec(&tb).expect("valid").moe;
            MoePerfModel::new(
                &tb.costs,
                s.n_a2a,
                s.n_ag,
                s.n_rs,
                s.n_exp,
                s.gemms,
                Phase::Backward,
                1.0,
            )
        })
        .collect();
    let solver_ms = best_of_ms(GEMM_RUNS, || {
        for m in &specs {
            std::hint::black_box(find_optimal_pipeline_degree(std::hint::black_box(m)));
        }
    });

    // §6.2: least-squares fitting takes <10 ms in the paper
    let tb = Testbed::b();
    let p = profile_op("AlltoAll", &tb.costs.a2a, &comm_message_sizes(), 0.01, 5, 3);
    let xs: Vec<f64> = p.samples.iter().map(|s| s.0).collect();
    let ys: Vec<f64> = p.samples.iter().map(|s| s.1).collect();
    let fit_ms = best_of_ms(GEMM_RUNS, || {
        std::hint::black_box(LinearFit::fit(&xs, &ys).expect("fit"));
    });
    vec![
        ("find_optimal_pipeline_degree_sweep", solver_ms),
        ("linear_fit_24_points", fit_ms),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // default to the workspace root regardless of cargo's bench cwd
    let out_path = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .cloned()
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compute.json").to_string()
        });

    let hardware = tensor::par::hardware_threads();
    println!("hardware threads: {hardware} (sweeps use explicit thread counts)\n");

    let (gemm_rows, best_per_dim) = bench_gemm();
    let (moe_sweep, tokens, experts, moe_best_ms) = bench_moe();

    let control = bench_control_plane();
    println!("\ncontrol plane:");
    for (name, ms) in &control {
        println!("  {name}: {ms:.4} ms");
    }

    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = Json::obj(vec![
        ("bench", Json::from("compute")),
        ("unix_time", Json::from(unix_time as f64)),
        ("hardware_threads", Json::from(hardware)),
        (
            "thread_sweep",
            Json::from(
                THREAD_SWEEP
                    .iter()
                    .map(|&t| Json::from(t))
                    .collect::<Vec<_>>(),
            ),
        ),
        ("gemm", Json::from(gemm_rows)),
        (
            "gemm_gflops_floors",
            Json::from(
                GFLOPS_FLOORS
                    .iter()
                    .map(|&(d, f)| {
                        Json::obj(vec![("dim", Json::from(d)), ("floor", Json::from(f))])
                    })
                    .collect::<Vec<_>>(),
            ),
        ),
        (
            "moe_layer",
            Json::obj(vec![
                ("tokens", Json::from(tokens)),
                ("experts", Json::from(experts)),
                ("best_ms", Json::from(moe_best_ms)),
                (
                    "best_tokens_per_s",
                    Json::from(tokens as f64 / (moe_best_ms * 1e-3)),
                ),
                ("sweep", Json::from(moe_sweep)),
            ]),
        ),
        (
            "control_plane",
            Json::obj(
                control
                    .iter()
                    .map(|(name, ms)| (*name, Json::from(*ms)))
                    .collect::<Vec<_>>(),
            ),
        ),
    ]);
    let text = json.to_string().expect("all benchmark numbers are finite");
    std::fs::write(&out_path, text + "\n").expect("write baseline json");
    println!("\nwrote {out_path}");

    // The budget check, after the JSON is on disk so a failing run still
    // leaves its numbers behind for diagnosis.
    for (dim, floor) in GFLOPS_FLOORS {
        let best = best_per_dim
            .iter()
            .find(|(d, _)| *d == dim)
            .map(|(_, g)| *g)
            .expect("floor dim is in GEMM_DIMS");
        assert!(
            best >= floor,
            "GEMM dim {dim}: best {best:.1} GFLOPS is below the {floor:.1} floor — \
             the packed microkernel regressed"
        );
    }
}
