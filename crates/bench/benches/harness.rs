//! Criterion benchmarks for the hot paths the paper quantifies in §6.2:
//! the pipeline-degree solver (paper: SLSQP averages 193 ms per config),
//! the model fit (paper: <10 ms), the gradient partitioner, the
//! discrete-event simulator, and the data-plane kernels.

use baselines::ScheduleKind;
use bench::table4_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use models::iteration::{build_iteration_graph, plan_iteration};
use models::ModelPreset;
use numopt::{DeConfig, LinearFit};
use profiler::microbench::{comm_message_sizes, profile_op};
use scheduler::{
    find_optimal_pipeline_degree, partition_gradients, GeneralizedLayer, MoePerfModel, Phase,
};
use simnet::{Engine, Testbed};
use std::hint::black_box;
use tensor::{Tensor, TensorRng};

fn bench_solver(c: &mut Criterion) {
    // §6.2: the SLSQP solve averages 193 ms per configuration; our exact
    // solver should be orders of magnitude faster
    let tb = Testbed::a();
    let specs: Vec<MoePerfModel> = table4_grid(&tb)
        .iter()
        .step_by(97)
        .map(|cfg| {
            let s = cfg.layer_spec(&tb).expect("valid").moe;
            MoePerfModel::new(
                &tb.costs,
                s.n_a2a,
                s.n_ag,
                s.n_rs,
                s.n_exp,
                s.gemms,
                Phase::Backward,
                1.0,
            )
        })
        .collect();
    c.bench_function("find_optimal_pipeline_degree", |b| {
        b.iter(|| {
            for m in &specs {
                black_box(find_optimal_pipeline_degree(black_box(m)));
            }
        })
    });
}

fn bench_linear_fit(c: &mut Criterion) {
    // §6.2: least-squares fitting takes <10 ms in the paper
    let tb = Testbed::b();
    let p = profile_op("AlltoAll", &tb.costs.a2a, &comm_message_sizes(), 0.01, 5, 3);
    let xs: Vec<f64> = p.samples.iter().map(|s| s.0).collect();
    let ys: Vec<f64> = p.samples.iter().map(|s| s.1).collect();
    c.bench_function("linear_fit_24_points", |b| {
        b.iter(|| black_box(LinearFit::fit(black_box(&xs), black_box(&ys)).unwrap()))
    });
}

fn bench_gradient_partition(c: &mut Criterion) {
    let tb = Testbed::b();
    let base = MoePerfModel::new(
        &tb.costs, 4.0e6, 4.0e6, 4.0e6, 2.0e10, 2, Phase::Backward, 0.0,
    );
    let layers: Vec<GeneralizedLayer> = (0..12)
        .map(|_| GeneralizedLayer {
            moe: base,
            t_olp_dense: 2.0,
            grad_bytes: 5.0e6,
        })
        .collect();
    let de = DeConfig {
        population: 12,
        generations: 40,
        seed: 1,
        ..DeConfig::default()
    };
    c.bench_function("partition_gradients_12_layers", |b| {
        b.iter(|| black_box(partition_gradients(black_box(&layers), tb.costs.all_reduce, de)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let tb = Testbed::b();
    let preset = ModelPreset::gpt2_xl_moe().with_seq_len(256).with_layers(12);
    let spec = preset.layer_spec(&tb).expect("valid");
    let plan = plan_iteration(ScheduleKind::FsMoe, &tb.costs, &spec, 12);
    let (graph, _) = build_iteration_graph(&plan);
    c.bench_function("simulate_12_layer_iteration", |b| {
        b.iter(|| black_box(Engine::new().simulate(black_box(&graph)).unwrap()))
    });
}

fn bench_data_plane(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(0);
    let a = rng.uniform(&[128, 128], -1.0, 1.0);
    let bm = rng.uniform(&[128, 128], -1.0, 1.0);
    c.bench_function("matmul_128", |b| {
        b.iter(|| black_box(a.matmul(black_box(&bm)).unwrap()))
    });

    let logits = rng.uniform(&[1024, 64], -1.0, 1.0);
    c.bench_function("softmax_topk_1024x64", |b| {
        b.iter(|| {
            let masked = logits.keep_top_k(2).unwrap();
            black_box(masked.softmax().unwrap())
        })
    });

    let cfg = fsmoe::config::MoeConfig::builder()
        .batch_size(1)
        .seq_len(512)
        .embed_dim(128)
        .hidden_dim(256)
        .num_experts(8)
        .top_k(2)
        .build()
        .unwrap();
    let mut layer = fsmoe::layer::MoeLayer::gshard(&cfg, &mut rng).unwrap();
    let input = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    c.bench_function("moe_layer_forward_512tok", |b| {
        b.iter(|| {
            let mut r = TensorRng::seed_from(1);
            black_box(layer.forward(black_box(&input), &mut r).unwrap())
        })
    });
    let _ = Tensor::zeros(&[1]);
}

criterion_group!(
    benches,
    bench_solver,
    bench_linear_fit,
    bench_gradient_partition,
    bench_simulator,
    bench_data_plane
);
criterion_main!(benches);
