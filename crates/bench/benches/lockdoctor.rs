//! Overhead guard for the lock doctor's disabled fast path.
//!
//! The contract (DESIGN.md §8) mirrors the obs registry's: with the
//! doctor off — the default — each `Mutex::lock` adds one relaxed
//! atomic load and a branch over a raw `std::sync::Mutex`, so the
//! instrumentation compiled into every workspace lock stays within the
//! same 2% budget the obs bench enforces, measured the same way:
//!
//! * directly: per-acquisition cost of a disabled shim lock minus a raw
//!   std lock, times the acquisitions one 4-rank collectives workload
//!   actually makes (counted by an enabled doctor run), as a fraction
//!   of the workload's wall time;
//! * for context: the same workload with the doctor enabled (tracking
//!   is allowed to cost more — it buys the order graph).
//!
//! Results go to `BENCH_lockdoctor.json` (override with the first
//! positional argument). Exits non-zero when the disabled overhead
//! exceeds 2%.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use collectives::{run_world, CommWorld};
use jsonio::Json;
use parking_lot::lock_doctor;

/// Best-of-`runs` wall time of `f`, in milliseconds.
fn best_of_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

const LOCK_CALLS: usize = 2_000_000;
const WORKLOAD_RUNS: usize = 5;

/// The measured workload: a 4-rank world doing a mix of collectives —
/// the lock-heaviest code in the workspace (every op is rendezvous
/// through a shim mutex + condvar).
fn collectives_workload() {
    let world = CommWorld::new(4);
    run_world(world, |comm| {
        let group = comm.world_group();
        let mut x = vec![comm.rank() as f32; 64];
        for _ in 0..50 {
            group.all_reduce(&mut x).expect("all_reduce");
            let _ = group.all_gather(&x).expect("all_gather");
            group.barrier().expect("barrier");
        }
    });
}

fn main() {
    let out_path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lockdoctor.json").to_string()
        });

    assert!(
        !lock_doctor::is_enabled(),
        "doctor must start disabled (unset LOCK_DOCTOR)"
    );

    // Per-acquisition cost: disabled shim lock vs raw std lock. The
    // difference is the doctor's fast path — one relaxed load + branch.
    let shim = parking_lot::Mutex::new(0u64);
    let shim_ns = best_of_ms(3, || {
        for _ in 0..LOCK_CALLS {
            *std::hint::black_box(&shim).lock() += 1;
        }
    }) * 1e6
        / LOCK_CALLS as f64;
    // lint: allow(std-sync) — this IS the raw baseline the shim's
    // fast-path cost is measured against.
    let raw = std::sync::Mutex::new(0u64);
    let raw_ns = best_of_ms(3, || {
        for _ in 0..LOCK_CALLS {
            *std::hint::black_box(&raw).lock().expect("unpoisoned") += 1;
        }
    }) * 1e6
        / LOCK_CALLS as f64;
    let per_lock_ns = (shim_ns - raw_ns).max(0.0);

    // Wall time with the doctor off…
    let disabled_ms = best_of_ms(WORKLOAD_RUNS, collectives_workload);

    // …how many acquisitions the workload makes (enabled run counts
    // them), and the enabled wall time for context.
    lock_doctor::enable();
    let _ = lock_doctor::take_report();
    let enabled_ms = best_of_ms(WORKLOAD_RUNS, collectives_workload);
    let report = lock_doctor::take_report();
    lock_doctor::disable();
    let acquisitions = report.acquisitions / WORKLOAD_RUNS as u64;
    assert!(
        report.is_clean(),
        "bench workload tripped the doctor:\n{}",
        report.render()
    );

    let disabled_overhead_pct = 100.0 * (acquisitions as f64 * per_lock_ns) / (disabled_ms * 1e6);
    let enabled_overhead_pct = 100.0 * (enabled_ms - disabled_ms) / disabled_ms;

    println!(
        "disabled lock: shim {shim_ns:.2} ns, raw std {raw_ns:.2} ns, delta {per_lock_ns:.2} ns"
    );
    println!(
        "workload: {acquisitions} acquisitions/run, {disabled_ms:.3} ms off / {enabled_ms:.3} ms on"
    );
    println!("disabled overhead: {disabled_overhead_pct:.4}% (budget 2%)");
    println!("enabled overhead: {enabled_overhead_pct:.2}%");

    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = Json::obj(vec![
        ("bench", Json::from("lockdoctor")),
        ("unix_time", Json::from(unix_time as f64)),
        ("disabled_shim_lock_ns", Json::from(shim_ns)),
        ("raw_std_lock_ns", Json::from(raw_ns)),
        ("disabled_delta_ns", Json::from(per_lock_ns)),
        ("acquisitions_per_run", Json::from(acquisitions as f64)),
        ("workload_ms_disabled", Json::from(disabled_ms)),
        ("workload_ms_enabled", Json::from(enabled_ms)),
        ("disabled_overhead_pct", Json::from(disabled_overhead_pct)),
        ("enabled_overhead_pct", Json::from(enabled_overhead_pct)),
        ("budget_pct", Json::from(2.0)),
    ]);
    let text = json.to_string().expect("all benchmark numbers are finite");
    std::fs::write(&out_path, text + "\n").expect("write baseline json");
    println!("wrote {out_path}");

    assert!(
        disabled_overhead_pct < 2.0,
        "disabled lock-doctor instrumentation must cost < 2% of the \
         collectives workload ({disabled_overhead_pct:.4}%)"
    );
}
