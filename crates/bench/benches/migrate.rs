//! Pause budget for an eviction-free hot-expert migration.
//!
//! The headline robustness claim (DESIGN.md §10) is that rebalancing a
//! skewed fleet by migrating one expert is a *pause*, not an outage:
//! the world fences, the weights move, every rank rebinds, and training
//! resumes — no snapshot reload, no world renumbering. This bench
//! measures that pause end to end on a real 4-rank world: the wall time
//! of `DistMoeLayer::migrate` from fence entry to new-placement
//! install, taken as the max across ranks (the slowest rank is the one
//! training waits for), best-of several worlds.
//!
//! For context it also prints what the simulator's α–β models predict
//! for the same move ([`simnet::price_migration`]), so measured and
//! modeled pauses can drift-check each other.
//!
//! Results go to `BENCH_migrate.json` (override with the first
//! positional argument). Exits non-zero when the measured pause
//! exceeds the budget.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use collectives::{run_world, CommWorld, HybridTopology, ParallelDims};
use fsmoe::config::MoeConfig;
use fsmoe::dist::DistMoeLayer;
use jsonio::Json;
use simnet::{price_migration, Testbed};
use tensor::TensorRng;

const SEED: u64 = 7;
const WORLD: usize = 4;
const RUNS: usize = 5;
/// Generous CI-jitter headroom; an in-process broadcast of one expert
/// finishes orders of magnitude under this.
const BUDGET_MS: f64 = 250.0;

fn topology() -> HybridTopology {
    HybridTopology::new(
        1,
        WORLD,
        ParallelDims {
            dp: WORLD,
            mp: 1,
            ep: WORLD,
            esp: 1,
        },
    )
    .expect("flat topology")
}

fn config() -> MoeConfig {
    MoeConfig::builder()
        .batch_size(1)
        .seq_len(16)
        .embed_dim(64)
        .hidden_dim(128)
        .num_experts(8)
        .top_k(2)
        .no_drop()
        .build()
        .expect("bench config")
}

/// One fresh 4-rank world: warm up with a forward/backward step, then
/// time `migrate(0, WORLD - 1)` on every rank. Returns the per-rank
/// pause in ms and the migrated expert's payload in bytes.
fn timed_migration() -> (Vec<f64>, f64) {
    let cfg = config();
    let results = run_world(CommWorld::new(WORLD), move |comm| {
        let topo = topology();
        let mut layer = DistMoeLayer::gshard(&cfg, &comm, &topo, SEED).expect("layer");
        let mut rng = TensorRng::seed_from(100 + comm.rank() as u64);
        let x = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
        let mut route_rng = TensorRng::seed_from(42);
        let y = layer.forward(&x, &mut route_rng).expect("warmup forward");
        layer.backward(&y).expect("warmup backward");
        let bytes: usize = layer
            .shards()
            .first()
            .map(|e| e.weights().iter().map(|t| t.data().len() * 4).sum())
            .unwrap_or(0);
        let start = Instant::now();
        layer.migrate(0, WORLD - 1, &comm).expect("migrate");
        (start.elapsed().as_secs_f64() * 1e3, bytes as f64)
    });
    let bytes = results[0].1;
    (results.into_iter().map(|(ms, _)| ms).collect(), bytes)
}

fn main() {
    let out_path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_migrate.json").to_string()
        });

    let mut best_pause_ms = f64::INFINITY;
    let mut worst_pause_ms: f64 = 0.0;
    let mut expert_bytes = 0.0;
    for run in 0..RUNS {
        let (per_rank, bytes) = timed_migration();
        expert_bytes = bytes;
        // Training resumes when the slowest rank has rebound.
        let pause = per_rank.iter().copied().fold(0.0f64, f64::max);
        println!(
            "run {run}: pause {pause:.3} ms (per rank: {:?})",
            per_rank
                .iter()
                .map(|ms| format!("{ms:.3}"))
                .collect::<Vec<_>>()
        );
        best_pause_ms = best_pause_ms.min(pause);
        worst_pause_ms = worst_pause_ms.max(pause);
    }

    let modeled = price_migration(&Testbed::a().costs, WORLD, expert_bytes, 1.0);
    println!(
        "migrate pause: best {best_pause_ms:.3} ms, worst {worst_pause_ms:.3} ms \
         ({expert_bytes:.0} B payload, budget {BUDGET_MS} ms)"
    );
    println!(
        "modeled (testbed A): quiesce {:.3} + transfer {:.3} + rebind {:.3} = {:.3} ms",
        modeled.quiesce,
        modeled.transfer,
        modeled.rebind,
        modeled.total()
    );

    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = Json::obj(vec![
        ("bench", Json::from("migrate")),
        ("unix_time", Json::from(unix_time as f64)),
        ("world", Json::from(WORLD as f64)),
        ("expert_bytes", Json::from(expert_bytes)),
        ("pause_ms_best", Json::from(best_pause_ms)),
        ("pause_ms_worst", Json::from(worst_pause_ms)),
        ("modeled_quiesce_ms", Json::from(modeled.quiesce)),
        ("modeled_transfer_ms", Json::from(modeled.transfer)),
        ("modeled_rebind_ms", Json::from(modeled.rebind)),
        ("modeled_total_ms", Json::from(modeled.total())),
        ("budget_ms", Json::from(BUDGET_MS)),
    ]);
    let text = json.to_string().expect("all benchmark numbers are finite");
    std::fs::write(&out_path, text + "\n").expect("write baseline json");
    println!("wrote {out_path}");

    assert!(
        best_pause_ms < BUDGET_MS,
        "hot-expert migration must pause training < {BUDGET_MS} ms \
         (best of {RUNS}: {best_pause_ms:.3} ms)"
    );
}
