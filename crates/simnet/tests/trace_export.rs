//! Round-trip agreement between the two timeline renderers: the same
//! `Timeline` drawn as an ASCII Gantt chart and exported as Chrome
//! trace JSON must describe the same schedule — same task count, same
//! resource rows, same start/end ordering.

use simnet::{render_gantt, timeline_trace, Engine, ResourceId, TaskGraph, TaskId};

/// A small two-node MoE-iteration-shaped graph with deliberate overlap
/// and one zero-duration task (the renderers' only divergence point).
/// Task names carry distinct leading glyphs so each gets its own legend
/// entry. Returns the graph, its resources, and the gpu1 task (the
/// straggler target).
fn testbed_graph() -> (TaskGraph, Vec<ResourceId>, TaskId) {
    let mut g = TaskGraph::new();
    let gpu0 = g.add_resource("gpu0.compute");
    let gpu1 = g.add_resource("gpu1.compute");
    let nic = g.add_resource("node0.nic");
    let a2a0 = g.add_task("dispatch", nic, 2.0, &[]);
    let e0 = g.add_task("experts", gpu0, 3.0, &[a2a0]);
    let e1 = g.add_task("overlap", gpu1, 4.0, &[a2a0]);
    let marker = g.add_task("marker", gpu0, 0.0, &[e0]);
    let _ = g.add_task("combine", nic, 2.0, &[marker, e1]);
    (g, vec![gpu0, gpu1, nic], e1)
}

/// Thread rows declared in the trace document, as (tid, name).
fn trace_thread_rows(doc: &jsonio::Json) -> Vec<(u64, String)> {
    doc.get("traceEvents")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .filter(|e| e.get("name").unwrap().as_str().unwrap() == "thread_name")
        .map(|e| {
            (
                e.get("tid").unwrap().as_f64().unwrap() as u64,
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string(),
            )
        })
        .collect()
}

#[test]
fn gantt_and_trace_agree_on_tasks_rows_and_ordering() {
    let (graph, resources, _) = testbed_graph();
    let timeline = Engine::new().simulate(&graph).unwrap();
    let chart = render_gantt(&graph, &timeline, 60);
    let doc = timeline_trace(&graph, &timeline);
    let text = doc.to_string().unwrap();
    let stats = obs::validate_trace(&text).unwrap();

    // Task count: the trace carries every task; the chart paints every
    // task with a positive duration (zero-duration tasks are invisible
    // at any pixel width). 5 tasks, 1 of them instantaneous.
    assert_eq!(stats.spans, graph.tasks().len());
    for (task, span) in graph.tasks().iter().zip(timeline.spans()) {
        let glyph = task.name.chars().next().unwrap();
        assert_eq!(
            chart.contains(&format!("{glyph}={}", task.name)),
            span.duration() > 0.0,
            "{} in legend iff drawn",
            task.name
        );
    }

    // Resource rows: one chart row and one trace thread row per
    // resource, carrying the same names.
    assert_eq!(stats.threads, graph.resource_count());
    let threads = trace_thread_rows(&doc);
    assert_eq!(threads.len(), graph.resource_count());
    let rows: Vec<&str> = chart.lines().take(graph.resource_count()).collect();
    for (r, id) in resources.iter().enumerate() {
        let name = graph.resource_name(*id).unwrap();
        assert!(rows[r].contains(name), "{name} chart row");
        assert!(
            threads.contains(&(r as u64, name.to_string())),
            "{name} trace thread row"
        );
    }

    // Start/end ordering: events in the trace JSON appear in simulated
    // start order, matching the left-to-right order of the chart.
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let starts: Vec<f64> = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str().unwrap() == "X")
        .map(|e| e.get("ts").unwrap().as_f64().unwrap())
        .collect();
    assert!(starts.windows(2).all(|w| w[0] <= w[1]), "{starts:?}");
    let mut expected: Vec<f64> = timeline.spans().iter().map(|s| s.start * 1000.0).collect();
    expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(starts, expected, "every simulated start survives export");
    // and the trace extends exactly to the chart's makespan axis
    assert_eq!(stats.max_ts_us as f64, timeline.makespan() * 1000.0);
    assert!(chart.contains(&format!("{:.3} ms", timeline.makespan())));
}

#[test]
fn straggler_timeline_exports_cleanly() {
    use simnet::Straggler;
    let (graph, _, slow_task) = testbed_graph();
    let baseline = Engine::new().simulate(&graph).unwrap();
    let slowed = Engine::new()
        .simulate_with_stragglers(
            &graph,
            &[Straggler {
                task: slow_task,
                extra: 6.0,
            }],
        )
        .unwrap();
    assert!(slowed.makespan() > baseline.makespan());
    let text = timeline_trace(&graph, &slowed).to_string().unwrap();
    let stats = obs::validate_trace(&text).unwrap();
    assert_eq!(stats.spans, graph.tasks().len());
    assert_eq!(stats.max_ts_us as f64, slowed.makespan() * 1000.0);
}
