//! Property-based tests for the discrete-event engine: structural
//! invariants every simulated timeline must satisfy.

use proptest::prelude::*;
use simnet::{Engine, TaskGraph, TaskId};

/// Builds a random (but valid) task graph: `n` tasks over `r` resources
/// with backward-only dependencies decided by the seed.
fn random_graph(n: usize, resources: usize, seed: u64) -> TaskGraph {
    let mut g = TaskGraph::new();
    let res: Vec<_> = (0..resources)
        .map(|i| g.add_resource(format!("r{i}")))
        .collect();
    let mut state = seed.wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut ids: Vec<TaskId> = Vec::new();
    for i in 0..n {
        let r = res[next() % resources.max(1)];
        let dur = (next() % 100) as f64 / 10.0;
        let deps: Vec<TaskId> = if ids.is_empty() {
            vec![]
        } else {
            (0..next() % 3).map(|_| ids[next() % ids.len()]).collect()
        };
        ids.push(g.add_task(format!("t{i}"), r, dur, &deps));
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn timelines_respect_all_invariants(
        n in 1usize..60,
        resources in 1usize..5,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, resources, seed);
        let tl = Engine::new().simulate(&g).unwrap();

        // 1. dependencies: no task starts before its deps end
        for (i, task) in g.tasks().iter().enumerate() {
            let span = tl.spans()[i];
            prop_assert!(span.end >= span.start);
            prop_assert!((span.duration() - task.duration).abs() < 1e-9);
            for d in &task.deps {
                prop_assert!(tl.span(*d).end <= span.start + 1e-9);
            }
        }

        // 2. resource exclusivity: same-resource spans never overlap
        for r in 0..g.resource_count() {
            let mut spans: Vec<_> = g
                .tasks()
                .iter()
                .enumerate()
                .filter(|(_, t)| t.resource.index() == r)
                .map(|(i, _)| tl.spans()[i])
                .collect();
            spans.sort_by(|a, b| a.start.total_cmp(&b.start));
            for w in spans.windows(2) {
                prop_assert!(w[0].end <= w[1].start + 1e-9,
                    "overlap on resource {r}: {:?} then {:?}", w[0], w[1]);
            }
        }

        // 3. issue order within a resource is preserved
        for r in 0..g.resource_count() {
            let starts: Vec<f64> = g
                .tasks()
                .iter()
                .enumerate()
                .filter(|(_, t)| t.resource.index() == r)
                .map(|(i, _)| tl.spans()[i].start)
                .collect();
            for w in starts.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-9, "issue order violated");
            }
        }

        // 4. makespan is the max end and busy time never exceeds it
        let max_end = tl.spans().iter().map(|s| s.end).fold(0.0, f64::max);
        prop_assert!((tl.makespan() - max_end).abs() < 1e-9);
        for r in 0..g.resource_count() {
            let rid = g.tasks().iter().find(|t| t.resource.index() == r).map(|t| t.resource);
            if let Some(rid) = rid {
                prop_assert!(tl.busy_time(rid) <= tl.makespan() + 1e-9);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&tl.utilization(rid)));
            }
        }
    }

    #[test]
    fn single_resource_makespan_is_total_work(
        durations in prop::collection::vec(0.0f64..20.0, 1..30),
    ) {
        let mut g = TaskGraph::new();
        let r = g.add_resource("only");
        for (i, &d) in durations.iter().enumerate() {
            let _ = g.add_task(format!("t{i}"), r, d, &[]);
        }
        let tl = Engine::new().simulate(&g).unwrap();
        let total: f64 = durations.iter().sum();
        prop_assert!((tl.makespan() - total).abs() < 1e-6);
        prop_assert!((tl.busy_time(r) - total).abs() < 1e-6);
    }

    #[test]
    fn adding_a_task_never_shrinks_the_makespan(
        n in 2usize..40,
        resources in 1usize..4,
        seed in any::<u64>(),
        extra in 0.1f64..10.0,
    ) {
        let g1 = random_graph(n, resources, seed);
        let before = Engine::new().simulate(&g1).unwrap().makespan();
        let mut g2 = random_graph(n, resources, seed);
        // append one more task to resource 0, with no dependencies (it
        // still serialises behind the queue on that resource)
        let r0 = g2.tasks()[0].resource;
        let _ = g2.add_task("extra", r0, extra, &[]);
        let after = Engine::new().simulate(&g2).unwrap().makespan();
        prop_assert!(after >= before - 1e-9);
    }
}
