//! Straggler injection in the discrete-event engine: a delay on the
//! critical path lengthens the makespan by *exactly* that delay; a delay
//! inside another path's slack costs nothing. Exactness matters — the
//! scheduler prices schedules off this engine, so fault what-ifs must be
//! arithmetic, not approximate.

use proptest::prelude::*;
use simnet::{Engine, SimError, Straggler, TaskGraph, TaskId};

/// The diamond from the engine unit tests: src → {left(2ms, 3ms slack),
/// right(5ms, critical)} → sink. Makespan 7ms.
fn diamond() -> (TaskGraph, TaskId, TaskId) {
    let mut g = TaskGraph::new();
    let r1 = g.add_resource("a");
    let r2 = g.add_resource("b");
    let src = g.add_task("src", r1, 1.0, &[]);
    let left = g.add_task("left", r1, 2.0, &[src]);
    let right = g.add_task("right", r2, 5.0, &[src]);
    let _sink = g.add_task("sink", r1, 1.0, &[left, right]);
    (g, left, right)
}

#[test]
fn critical_path_delay_degrades_exactly() {
    let (g, _, right) = diamond();
    let base = Engine::new().simulate(&g).unwrap().makespan();
    assert_eq!(base, 7.0);
    for extra in [0.5, 1.5, 10.0] {
        let tl = Engine::new()
            .simulate_with_stragglers(&g, &[Straggler { task: right, extra }])
            .unwrap();
        assert_eq!(
            tl.makespan(),
            base + extra,
            "critical-path straggler must cost exactly its delay"
        );
    }
}

#[test]
fn off_critical_delay_within_slack_is_free() {
    let (g, left, _) = diamond();
    let base = Engine::new().simulate(&g).unwrap().makespan();
    // left has 3 ms of slack (ends at 3, sink waits for right until 6)
    for extra in [1.0, 2.5, 3.0] {
        let tl = Engine::new()
            .simulate_with_stragglers(&g, &[Straggler { task: left, extra }])
            .unwrap();
        assert_eq!(
            tl.makespan(),
            base,
            "slack must absorb an off-critical straggler of {extra} ms"
        );
    }
    // beyond the slack, only the excess shows up
    let tl = Engine::new()
        .simulate_with_stragglers(
            &g,
            &[Straggler {
                task: left,
                extra: 4.0,
            }],
        )
        .unwrap();
    assert_eq!(tl.makespan(), base + 1.0);
}

#[test]
fn repeated_stragglers_accumulate() {
    let (g, _, right) = diamond();
    let tl = Engine::new()
        .simulate_with_stragglers(
            &g,
            &[
                Straggler {
                    task: right,
                    extra: 1.0,
                },
                Straggler {
                    task: right,
                    extra: 2.0,
                },
            ],
        )
        .unwrap();
    assert_eq!(tl.makespan(), 10.0);
}

#[test]
fn empty_straggler_list_matches_plain_simulate() {
    let (g, _, _) = diamond();
    let a = Engine::new().simulate(&g).unwrap();
    let b = Engine::new().simulate_with_stragglers(&g, &[]).unwrap();
    assert_eq!(a, b);
}

#[test]
fn invalid_stragglers_are_rejected() {
    let (g, left, _) = diamond();
    let eng = Engine::new();
    // TaskId fields are crate-private; mint an out-of-range id from a
    // bigger graph (the diamond only has tasks 0..4).
    let mut big = TaskGraph::new();
    let r = big.add_resource("r");
    let foreign = (0..5)
        .map(|i| big.add_task(format!("t{i}"), r, 1.0, &[]))
        .last()
        .unwrap();
    assert!(matches!(
        eng.simulate_with_stragglers(
            &g,
            &[Straggler {
                task: foreign,
                extra: 1.0
            }]
        ),
        Err(SimError::UnknownTask { id: 4 })
    ));
    for bad in [-1.0, f64::NAN, f64::INFINITY] {
        assert!(matches!(
            eng.simulate_with_stragglers(
                &g,
                &[Straggler {
                    task: left,
                    extra: bad
                }]
            ),
            Err(SimError::BadDuration { .. })
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Monotonicity + boundedness: a straggler never speeds the schedule
    /// up, and never costs more than its own delay.
    #[test]
    fn straggler_cost_is_bounded(
        n_tasks in 2usize..16,
        n_res in 1usize..4,
        victim in 0usize..16,
        extra_tenths in 0u64..50,
        seed in any::<u64>(),
    ) {
        let victim = victim % n_tasks;
        let extra = extra_tenths as f64 / 10.0;
        let mut g = TaskGraph::new();
        let res: Vec<_> = (0..n_res).map(|i| g.add_resource(format!("r{i}"))).collect();
        let mut ids: Vec<TaskId> = Vec::new();
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in 0..n_tasks {
            let r = res[(next() as usize) % n_res];
            let dur = 0.5 + (next() % 40) as f64 / 10.0;
            // up to two deps on earlier tasks
            let deps: Vec<TaskId> = (0..(next() % 3))
                .filter_map(|_| {
                    if ids.is_empty() {
                        None
                    } else {
                        Some(ids[(next() as usize) % ids.len()])
                    }
                })
                .collect();
            ids.push(g.add_task(format!("t{i}"), r, dur, &deps));
        }
        let base = Engine::new().simulate(&g).unwrap().makespan();
        let tl = Engine::new()
            .simulate_with_stragglers(&g, &[Straggler { task: ids[victim], extra }])
            .unwrap();
        prop_assert!(tl.makespan() >= base - 1e-9,
            "straggler sped up the schedule: {} < {base}", tl.makespan());
        prop_assert!(tl.makespan() <= base + extra + 1e-9,
            "straggler cost more than its delay: {} > {base} + {extra}", tl.makespan());
    }
}
