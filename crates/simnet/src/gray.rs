//! Pricing the gray-failure crossover: keep limping vs evict + reshard.
//!
//! A browned-out rank does not stop training — it *taxes* it: every
//! step runs at the slow rank's pace, so over a horizon of `H` steps
//! the fleet pays `H · healthy_step · slowdown` instead of
//! `H · healthy_step`. Evicting the slow rank removes the tax but pays
//! the reconfiguration stall up front ([`price_reconfiguration`], minus
//! its *detect* phase — health scoring already named the rank, nobody
//! sat out a deadline), replays the steps rolled back to the snapshot,
//! and then runs the horizon on one fewer rank, each step proportionally
//! heavier. The crossover between those two totals is the escalation
//! ladder's last rung: `ElasticTrainer` only proposes evicting a
//! live-but-slow rank once [`GrayFailureCost::eviction_wins`] says the
//! arithmetic favours it.

use crate::reconfig::{price_reconfiguration, ReconfigCost};
use crate::OpCosts;

/// The two sides of the keep-limping-vs-evict comparison, in ms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayFailureCost {
    /// Cost of doing nothing: the horizon run at the slow rank's pace.
    pub limp: f64,
    /// The up-front reconfiguration stall (agree + reshard + restore;
    /// detect is zero — health scoring already did the detecting).
    pub reconfigure: ReconfigCost,
    /// Re-running the steps the rollback discarded, on the shrunken
    /// world.
    pub replay: f64,
    /// The horizon run on the shrunken world at full health (each step
    /// heavier by `world / (world - 1)`).
    pub resumed: f64,
}

impl GrayFailureCost {
    /// Total cost of the eviction branch.
    pub fn evict_total(&self) -> f64 {
        self.reconfigure.total() + self.replay + self.resumed
    }

    /// Whether evicting the slow rank beats limping over the horizon.
    pub fn eviction_wins(&self) -> bool {
        self.evict_total() < self.limp
    }
}

/// Prices the keep-limping-vs-evict crossover for one gray-failed rank.
///
/// * `world` — current rank count, slow rank included.
/// * `healthy_step_ms` — a step's cost when nobody limps.
/// * `slowdown` — the slow rank's health score (1.0 = healthy, 2.0 =
///   half speed); the whole fleet steps at this pace. Clamped to ≥ 1.
/// * `horizon_steps` — how far ahead the comparison looks. Short
///   horizons favour limping (the reconfiguration never amortizes);
///   long horizons favour eviction.
/// * `replay_steps` — steps the eviction's rollback discards and the
///   shrunken world must re-run.
/// * `moved_bytes` / `checkpoint_bytes` — as in
///   [`price_reconfiguration`]: orphaned weights and snapshot size.
///
/// Every input is identical on every rank of an SPMD program (scores
/// are all-reduced, sizes derive from the config), so every rank prices
/// the same crossover and the eviction decision is itself SPMD.
#[allow(clippy::too_many_arguments)] // mirrors price_reconfiguration's flat signature
pub fn price_gray_failure(
    costs: &OpCosts,
    world: usize,
    healthy_step_ms: f64,
    slowdown: f64,
    horizon_steps: usize,
    replay_steps: usize,
    moved_bytes: f64,
    checkpoint_bytes: f64,
) -> GrayFailureCost {
    let world = world.max(2) as f64;
    let healthy = healthy_step_ms.max(0.0);
    let horizon = horizon_steps as f64;
    // One fewer rank shoulders the same model: each step slows by the
    // lost rank's share.
    let shrunken_step = healthy * world / (world - 1.0);
    GrayFailureCost {
        limp: horizon * healthy * slowdown.max(1.0),
        reconfigure: price_reconfiguration(
            costs,
            world as usize - 1,
            0.0,
            moved_bytes,
            checkpoint_bytes,
        ),
        replay: replay_steps as f64 * shrunken_step,
        resumed: horizon * shrunken_step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Testbed;

    const MOVED: f64 = 1e6;
    const CKPT: f64 = 4e6;

    #[test]
    fn severe_slowdown_over_a_long_horizon_flips_to_eviction() {
        let costs = Testbed::a().costs;
        let c = price_gray_failure(&costs, 4, 10.0, 2.0, 1000, 2, MOVED, CKPT);
        // Limp: 1000 × 10 × 2.0 = 20 s; evict: reconfig + ~1002 × 13.3 ms.
        assert!(c.eviction_wins(), "2× slowdown for 1000 steps: {c:?}");
    }

    #[test]
    fn mild_slowdown_over_a_short_horizon_keeps_limping() {
        let costs = Testbed::a().costs;
        let c = price_gray_failure(&costs, 4, 10.0, 1.1, 5, 2, MOVED, CKPT);
        // Limp: 5 × 11 = 55 ms; evict pays the reconfiguration alone
        // plus 7 steps at 4/3 weight — never amortized in 5 steps.
        assert!(!c.eviction_wins(), "1.1× for 5 steps: {c:?}");
    }

    #[test]
    fn breakeven_moves_with_the_horizon() {
        // The same slowdown that is not worth evicting over a short
        // horizon becomes worth it over a long one.
        let costs = Testbed::b().costs;
        let short = price_gray_failure(&costs, 4, 10.0, 1.6, 10, 2, MOVED, CKPT);
        let long = price_gray_failure(&costs, 4, 10.0, 1.6, 10_000, 2, MOVED, CKPT);
        assert!(!short.eviction_wins(), "{short:?}");
        assert!(long.eviction_wins(), "{long:?}");
    }

    #[test]
    fn reconfiguration_phases_match_the_protocol_minus_detection() {
        let costs = Testbed::a().costs;
        let c = price_gray_failure(&costs, 4, 10.0, 1.5, 100, 2, MOVED, CKPT);
        let expected = price_reconfiguration(&costs, 3, 0.0, MOVED, CKPT);
        assert_eq!(c.reconfigure, expected);
        assert_eq!(
            c.reconfigure.detect, 0.0,
            "health scoring already detected; no deadline sit-out"
        );
    }

    #[test]
    fn eviction_branch_charges_the_shrunken_world_step_tax() {
        let costs = Testbed::a().costs;
        let c = price_gray_failure(&costs, 4, 12.0, 2.0, 100, 3, MOVED, CKPT);
        let shrunken = 12.0 * 4.0 / 3.0;
        assert!((c.resumed - 100.0 * shrunken).abs() < 1e-9);
        assert!((c.replay - 3.0 * shrunken).abs() < 1e-9);
        assert!((c.limp - 100.0 * 24.0).abs() < 1e-9);
        assert!((c.evict_total() - (c.reconfigure.total() + c.replay + c.resumed)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_clamp_instead_of_poisoning() {
        let costs = Testbed::a().costs;
        // Sub-1.0 slowdown clamps to healthy pace; a 2-rank world is the
        // smallest that can lose a member.
        let c = price_gray_failure(&costs, 0, -5.0, 0.5, 10, 0, -1.0, -1.0);
        assert!(c.limp >= 0.0);
        assert!(c.evict_total().is_finite());
        assert!(
            !c.eviction_wins(),
            "nothing to gain from evicting a healthy fleet: {c:?}"
        );
    }

    #[test]
    fn monotone_in_slowdown_and_horizon() {
        let costs = Testbed::b().costs;
        let base = price_gray_failure(&costs, 4, 10.0, 1.5, 100, 2, MOVED, CKPT);
        let slower = price_gray_failure(&costs, 4, 10.0, 2.5, 100, 2, MOVED, CKPT);
        assert!(slower.limp > base.limp);
        assert_eq!(slower.evict_total(), base.evict_total());
        let longer = price_gray_failure(&costs, 4, 10.0, 1.5, 200, 2, MOVED, CKPT);
        assert!(longer.limp > base.limp);
        assert!(longer.evict_total() > base.evict_total());
    }
}
