use std::error::Error;
use std::fmt;

/// Error type for simulator construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A task referenced an unknown task id as a dependency.
    UnknownTask {
        /// The offending id value.
        id: usize,
    },
    /// A task referenced an unknown resource.
    UnknownResource {
        /// The offending id value.
        id: usize,
    },
    /// A task was given a negative or non-finite duration.
    BadDuration {
        /// Task name.
        task: String,
        /// Offending duration.
        duration: f64,
    },
    /// The dependency graph contains a cycle (or cross-stream deadlock
    /// with issue-order blocking).
    Deadlock {
        /// Number of tasks that could not be scheduled.
        stuck: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownTask { id } => write!(f, "unknown task id {id}"),
            SimError::UnknownResource { id } => write!(f, "unknown resource id {id}"),
            SimError::BadDuration { task, duration } => {
                write!(f, "task {task:?} has invalid duration {duration}")
            }
            SimError::Deadlock { stuck } => {
                write!(f, "schedule deadlocked with {stuck} tasks unscheduled")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!SimError::UnknownTask { id: 3 }.to_string().is_empty());
        assert!(SimError::Deadlock { stuck: 2 }.to_string().contains('2'));
    }
}
