//! The discrete-event execution engine.

use crate::{Result, SimError, TaskGraph, TaskId};

/// The scheduled execution window of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Start time, ms.
    pub start: f64,
    /// End time, ms.
    pub end: f64,
}

impl Span {
    /// Duration of the span.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A fully simulated execution of a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    spans: Vec<Span>,
    makespan: f64,
    busy: Vec<f64>,
}

impl Timeline {
    /// Total simulated time from 0 to the last task completion.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Execution window of `task`.
    ///
    /// # Panics
    ///
    /// Panics when `task` does not belong to the simulated graph.
    pub fn span(&self, task: TaskId) -> Span {
        self.spans[task.0]
    }

    /// All spans in task-issue order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total busy time of resource `r` (by raw index).
    pub fn busy_time(&self, r: crate::ResourceId) -> f64 {
        self.busy.get(r.0).copied().unwrap_or(0.0)
    }

    /// Fraction of the makespan the resource spent busy (0 when the
    /// makespan is 0).
    pub fn utilization(&self, r: crate::ResourceId) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.busy_time(r) / self.makespan
        }
    }
}

/// A fault-model perturbation: `task` runs `extra` ms longer than its
/// modelled duration (a slow GPU, a contended NIC, a flaky link).
///
/// Stragglers feed what-if analysis for the fault-tolerant runtime: an
/// extra delay on the critical path lengthens the iteration by exactly
/// that delay; off the critical path it is absorbed by slack. The
/// engine's [`Engine::simulate_with_stragglers`] makes that exact
/// accounting available to tests and schedulers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// The task being slowed down.
    pub task: TaskId,
    /// Additional duration, ms (must be finite and non-negative).
    pub extra: f64,
}

/// Simulates task graphs.
///
/// Resources run their tasks strictly in issue order (CUDA-stream
/// semantics): the head task of each resource queue starts as soon as its
/// dependencies complete and the resource is free; tasks issued later on
/// the same resource never overtake it.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    _private: (),
}

impl Engine {
    /// Creates an engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Runs the graph to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] when dependencies form a cycle, or a
    /// cross-resource dependency pattern deadlocks under issue-order
    /// (head-of-line) execution — e.g. task A on stream 1 waiting on task
    /// B that was issued *behind* another stream-1 waiter.
    pub fn simulate(&self, graph: &TaskGraph) -> Result<Timeline> {
        self.simulate_with_stragglers(graph, &[])
    }

    /// Runs the graph with injected [`Straggler`] delays added to the
    /// named tasks' durations. Repeated entries for one task accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownTask`] when a straggler names a task
    /// outside the graph, [`SimError::BadDuration`] when its extra delay
    /// is negative or non-finite, and the same scheduling errors as
    /// [`Engine::simulate`].
    pub fn simulate_with_stragglers(
        &self,
        graph: &TaskGraph,
        stragglers: &[Straggler],
    ) -> Result<Timeline> {
        let mut extra = vec![0.0f64; graph.len()];
        for s in stragglers {
            let task = graph.task(s.task)?;
            if !s.extra.is_finite() || s.extra < 0.0 {
                return Err(SimError::BadDuration {
                    task: task.name.clone(),
                    duration: s.extra,
                });
            }
            extra[s.task.0] += s.extra;
        }
        let n = graph.len();
        let n_res = graph.resource_count();
        // Per-resource FIFO queues in issue order.
        let mut queues: Vec<std::collections::VecDeque<usize>> =
            vec![std::collections::VecDeque::new(); n_res];
        for (i, t) in graph.tasks().iter().enumerate() {
            queues[t.resource.0].push_back(i);
        }
        let mut finish: Vec<Option<f64>> = vec![None; n];
        let mut spans: Vec<Span> = vec![
            Span {
                start: 0.0,
                end: 0.0,
            };
            n
        ];
        let mut res_free = vec![0.0f64; n_res];
        let mut busy = vec![0.0f64; n_res];
        let mut done = 0usize;

        while done < n {
            // Choose, among resource heads whose deps are satisfied, the
            // one that can start earliest (ties: lowest resource index).
            let mut best: Option<(f64, usize, usize)> = None; // (start, res, task)
            for (r, q) in queues.iter().enumerate() {
                let Some(&t) = q.front() else { continue };
                let deps_ready = graph.tasks()[t]
                    .deps
                    .iter()
                    .try_fold(0.0f64, |acc, d| finish[d.0].map(|f| acc.max(f)));
                let Some(deps_ready) = deps_ready else {
                    continue;
                };
                let start = res_free[r].max(deps_ready);
                let better = match best {
                    None => true,
                    Some((bs, br, _)) => start < bs || (start == bs && r < br),
                };
                if better {
                    best = Some((start, r, t));
                }
            }
            let Some((start, r, t)) = best else {
                return Err(SimError::Deadlock { stuck: n - done });
            };
            let dur = graph.tasks()[t].duration + extra[t];
            let end = start + dur;
            spans[t] = Span { start, end };
            finish[t] = Some(end);
            res_free[r] = end;
            busy[r] += dur;
            queues[r].pop_front();
            done += 1;
        }

        let makespan = spans.iter().map(|s| s.end).fold(0.0, f64::max);
        Ok(Timeline {
            spans,
            makespan,
            busy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskGraph;

    #[test]
    fn sequential_chain_accumulates() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("compute");
        let a = g.add_task("a", r, 1.5, &[]);
        let b = g.add_task("b", r, 2.5, &[a]);
        let tl = Engine::new().simulate(&g).unwrap();
        assert_eq!(tl.makespan(), 4.0);
        assert_eq!(tl.span(b).start, 1.5);
        assert_eq!(tl.busy_time(r), 4.0);
        assert_eq!(tl.utilization(r), 1.0);
    }

    #[test]
    fn independent_resources_overlap() {
        let mut g = TaskGraph::new();
        let c = g.add_resource("compute");
        let l = g.add_resource("link");
        let _ = g.add_task("gemm", c, 3.0, &[]);
        let _ = g.add_task("a2a", l, 2.0, &[]);
        let tl = Engine::new().simulate(&g).unwrap();
        assert_eq!(tl.makespan(), 3.0);
    }

    #[test]
    fn same_resource_serializes_independent_tasks() {
        // Two AlltoAlls on one NIC contend even without data deps — the
        // §5 contention FSMoE's gradient partitioning must respect.
        let mut g = TaskGraph::new();
        let l = g.add_resource("nic");
        let _ = g.add_task("a2a", l, 2.0, &[]);
        let _ = g.add_task("gar", l, 2.0, &[]);
        let tl = Engine::new().simulate(&g).unwrap();
        assert_eq!(tl.makespan(), 4.0);
    }

    #[test]
    fn pipeline_of_two_chunks() {
        // classic 2-stage pipeline: comm(1) -> comp(2) per chunk, comm and
        // comp on different streams. chunk2 comm overlaps chunk1 comp.
        let mut g = TaskGraph::new();
        let comm = g.add_resource("comm");
        let comp = g.add_resource("comp");
        let c1 = g.add_task("comm1", comm, 1.0, &[]);
        let _p1 = g.add_task("comp1", comp, 2.0, &[c1]);
        let c2 = g.add_task("comm2", comm, 1.0, &[]);
        let p2 = g.add_task("comp2", comp, 2.0, &[c2]);
        let tl = Engine::new().simulate(&g).unwrap();
        // comm1 [0,1], comm2 [1,2], comp1 [1,3], comp2 [3,5]
        assert_eq!(tl.makespan(), 5.0);
        assert_eq!(tl.span(p2).start, 3.0);
    }

    #[test]
    fn issue_order_blocks_head_of_line() {
        // Stream semantics: y issued before z on the same stream, y waits
        // on a long task, so z cannot start early even though it has no
        // deps.
        let mut g = TaskGraph::new();
        let s1 = g.add_resource("s1");
        let s2 = g.add_resource("s2");
        let long = g.add_task("long", s1, 10.0, &[]);
        let y = g.add_task("y", s2, 1.0, &[long]);
        let z = g.add_task("z", s2, 1.0, &[]);
        let tl = Engine::new().simulate(&g).unwrap();
        assert_eq!(tl.span(y).start, 10.0);
        assert_eq!(tl.span(z).start, 11.0, "z must not overtake y");
    }

    #[test]
    fn diamond_dependency() {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("a");
        let r2 = g.add_resource("b");
        let src = g.add_task("src", r1, 1.0, &[]);
        let left = g.add_task("left", r1, 2.0, &[src]);
        let right = g.add_task("right", r2, 5.0, &[src]);
        let sink = g.add_task("sink", r1, 1.0, &[left, right]);
        let tl = Engine::new().simulate(&g).unwrap();
        assert_eq!(tl.span(sink).start, 6.0);
        assert_eq!(tl.makespan(), 7.0);
    }

    #[test]
    fn backward_references_never_deadlock() {
        // The builder only admits dependencies on already-issued tasks, so
        // the earliest-issued unscheduled task is always at the head of its
        // resource queue with all deps complete — every graph the public
        // API can build must simulate to completion. Exercise a dense
        // cross-stream mesh to back that argument.
        let mut g = TaskGraph::new();
        let streams: Vec<_> = (0..4).map(|i| g.add_resource(format!("s{i}"))).collect();
        let mut ids: Vec<TaskId> = Vec::new();
        for i in 0..64 {
            let res = streams[i % streams.len()];
            // depend on up to three earlier tasks on *other* streams
            let deps: Vec<TaskId> = ids
                .iter()
                .rev()
                .filter(|t| g.task(**t).unwrap().resource != res)
                .take(3)
                .copied()
                .collect();
            ids.push(g.add_task(format!("t{i}"), res, 1.0 + (i % 5) as f64, &deps));
        }
        let tl = Engine::new().simulate(&g).unwrap();
        // every dep finishes before its dependent starts
        for (i, t) in g.tasks().iter().enumerate() {
            for d in &t.deps {
                assert!(tl.span(*d).end <= tl.spans()[i].start + 1e-12);
            }
        }
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = TaskGraph::new();
        let tl = Engine::new().simulate(&g).unwrap();
        assert_eq!(tl.makespan(), 0.0);
    }

    #[test]
    fn zero_duration_tasks_are_fine() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        let a = g.add_task("a", r, 0.0, &[]);
        let b = g.add_task("b", r, 1.0, &[a]);
        let tl = Engine::new().simulate(&g).unwrap();
        assert_eq!(tl.span(b).start, 0.0);
        assert_eq!(tl.makespan(), 1.0);
    }

    #[test]
    fn deterministic_repeat() {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("a");
        let r2 = g.add_resource("b");
        let mut prev = None;
        for i in 0..20 {
            let r = if i % 2 == 0 { r1 } else { r2 };
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.add_task(format!("t{i}"), r, 0.5 + i as f64 * 0.1, &deps));
        }
        let t1 = Engine::new().simulate(&g).unwrap();
        let t2 = Engine::new().simulate(&g).unwrap();
        assert_eq!(t1, t2);
    }
}
