//! Pricing a membership reconfiguration event.
//!
//! When a rank dies permanently, the runtime pays four sequential
//! phases before training resumes (the elastic-membership protocol in
//! DESIGN.md §6): *detect* (the collective deadline must expire before
//! anyone blames the dead peer), *agree* (the surviving ranks vote the
//! victim out — an AllReduce-shaped exchange of one vote word), then
//! *reshard* (the orphaned expert weights move to their new owners via
//! the AllGather-shaped global checkpoint) and *restore* (every
//! survivor reloads the rolled-back snapshot). This module prices those
//! phases with the same α–β models the rest of the simulator uses, so a
//! schedule search can weigh eviction cost against the cost of limping
//! along with a degraded world.

use crate::{OpCosts, ResourceId, TaskGraph, TaskId};

/// The per-phase cost breakdown of one reconfiguration, in ms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigCost {
    /// Time until the failure is detected: the collective deadline.
    pub detect: f64,
    /// The eviction vote among survivors (AllReduce of one vote word).
    pub agree: f64,
    /// Moving the orphaned experts to their new owners (AllGather).
    pub reshard: f64,
    /// Reloading the rolled-back snapshot on every survivor (AllGather).
    pub restore: f64,
}

impl ReconfigCost {
    /// Total stall: the phases are strictly sequential (the vote cannot
    /// start before detection, the reshard needs the new world, the
    /// restore needs the new placement).
    pub fn total(&self) -> f64 {
        self.detect + self.agree + self.reshard + self.restore
    }
}

/// Prices one reconfiguration event.
///
/// * `world` — surviving rank count (the vote spans the survivors).
/// * `deadline_ms` — the collective deadline; detection cannot be
///   faster than the deadline that declares the victim dead.
/// * `moved_bytes` — orphaned expert weights that change owner.
/// * `checkpoint_bytes` — full snapshot each survivor reloads.
///
/// The vote exchanges one 8-byte word per survivor.
pub fn price_reconfiguration(
    costs: &OpCosts,
    world: usize,
    deadline_ms: f64,
    moved_bytes: f64,
    checkpoint_bytes: f64,
) -> ReconfigCost {
    let world = world.max(1) as f64;
    ReconfigCost {
        detect: deadline_ms.max(0.0),
        agree: costs.all_reduce.time(8.0 * world),
        reshard: costs.all_gather.time(moved_bytes.max(0.0)),
        restore: costs.all_gather.time(checkpoint_bytes.max(0.0)),
    }
}

/// Appends the reconfiguration as a sequential chain of tasks on
/// `resource` (the link every phase serialises on), after `deps`.
/// Returns the final task — schedule the resumed training after it.
pub fn add_reconfiguration_tasks(
    graph: &mut TaskGraph,
    resource: ResourceId,
    cost: &ReconfigCost,
    deps: &[TaskId],
) -> TaskId {
    let detect = graph.add_task("reconfig.detect", resource, cost.detect, deps);
    let agree = graph.add_task("reconfig.agree", resource, cost.agree, &[detect]);
    let reshard = graph.add_task("reconfig.reshard", resource, cost.reshard, &[agree]);
    graph.add_task("reconfig.restore", resource, cost.restore, &[reshard])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Testbed};

    #[test]
    fn phases_follow_the_alpha_beta_models() {
        let costs = Testbed::a().costs;
        let c = price_reconfiguration(&costs, 4, 50.0, 1e6, 4e6);
        assert_eq!(c.detect, 50.0);
        assert_eq!(c.agree, costs.all_reduce.time(32.0));
        assert_eq!(c.reshard, costs.all_gather.time(1e6));
        assert_eq!(c.restore, costs.all_gather.time(4e6));
        assert!((c.total() - (c.detect + c.agree + c.reshard + c.restore)).abs() < 1e-12);
    }

    #[test]
    fn cost_is_monotone_in_every_input() {
        let costs = Testbed::b().costs;
        let base = price_reconfiguration(&costs, 4, 50.0, 1e6, 4e6).total();
        assert!(price_reconfiguration(&costs, 8, 50.0, 1e6, 4e6).total() > base);
        assert!(price_reconfiguration(&costs, 4, 60.0, 1e6, 4e6).total() > base);
        assert!(price_reconfiguration(&costs, 4, 50.0, 2e6, 4e6).total() > base);
        assert!(price_reconfiguration(&costs, 4, 50.0, 1e6, 8e6).total() > base);
    }

    #[test]
    fn degenerate_inputs_clamp_instead_of_poisoning() {
        let costs = Testbed::a().costs;
        let c = price_reconfiguration(&costs, 0, -1.0, -5.0, -5.0);
        assert_eq!(c.detect, 0.0);
        // Zero-byte collectives still pay their startup α.
        assert_eq!(c.agree, costs.all_reduce.time(8.0));
        assert_eq!(c.reshard, costs.all_gather.alpha);
        assert!(c.total().is_finite());
    }

    #[test]
    fn tasks_extend_the_critical_path_by_exactly_the_total() {
        let costs = Testbed::a().costs;
        let cost = price_reconfiguration(&costs, 4, 25.0, 1e6, 4e6);
        let mut g = TaskGraph::new();
        let link = g.add_resource("node0.nic");
        let step = g.add_task("train.step", link, 3.0, &[]);
        let last = add_reconfiguration_tasks(&mut g, link, &cost, &[step]);
        let resume = g.add_task("train.resume", link, 3.0, &[last]);
        let tl = Engine::new().simulate(&g).unwrap();
        assert!((tl.makespan() - (6.0 + cost.total())).abs() < 1e-9);
        assert!((tl.span(resume).start - (3.0 + cost.total())).abs() < 1e-9);
    }
}
