//! Modeled timeline of one unoverlapped MoE training step.
//!
//! `obs::attrib` measures where a real step's wall time went; this
//! module produces the *prediction* that measurement is checked against.
//! Given per-phase α–β models — expert compute and wire (dispatch +
//! combine AlltoAll) fitted against the same workload axis — it lowers
//! the serial forward chain `dispatch → experts → combine` onto the
//! simulator and reports the modeled phase split. A real run whose
//! attribution drifts far from this prediction has behaviour the model
//! does not capture (a straggler, contention, a scheduling bug).

use crate::{CostModel, Engine, SimError, TaskGraph};

/// Per-phase α–β models of one training step.
///
/// Both models must be fitted against the same workload axis `n`
/// (tokens, bytes, FLOPs — the caller's choice; only consistency
/// matters). `wire` prices the step's *total* collective time; the
/// lowering splits it evenly between the dispatch and combine tasks,
/// matching how `obs::attrib` measures the two jointly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepModel {
    /// Expert compute time vs. workload.
    pub compute: CostModel,
    /// Total per-step collective (dispatch + combine) time vs. workload.
    pub wire: CostModel,
}

/// The modeled split of one step at a given workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepPrediction {
    /// End-to-end modeled step time.
    pub wall: f64,
    /// Modeled expert-compute share.
    pub compute: f64,
    /// Modeled wire share.
    pub wire: f64,
}

impl StepModel {
    /// Lowers `steps` consecutive unoverlapped steps at workload `n`
    /// onto a task graph: one compute stream, one link, and per step the
    /// serial chain `dispatch → experts → combine` (each step's dispatch
    /// depends on the previous step's combine).
    pub fn graph(&self, n: f64, steps: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("rank.compute");
        let link = g.add_resource("rank.nic");
        let half_wire = (self.wire.time(n) / 2.0).max(0.0);
        let compute = self.compute.time(n).max(0.0);
        let mut prev = None;
        for step in 0..steps.max(1) {
            let deps: Vec<_> = prev.into_iter().collect();
            let dispatch = g.add_task(format!("step{step}.dispatch"), link, half_wire, &deps);
            let experts = g.add_task(format!("step{step}.experts"), gpu, compute, &[dispatch]);
            let combine = g.add_task(format!("step{step}.combine"), link, half_wire, &[experts]);
            prev = Some(combine);
        }
        g
    }

    /// Simulates one step at workload `n` and returns the modeled split.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (impossible for the serial chain this
    /// builds, but the signature keeps the engine's contract visible).
    pub fn predict(&self, n: f64) -> Result<StepPrediction, SimError> {
        let timeline = Engine::new().simulate(&self.graph(n, 1))?;
        Ok(StepPrediction {
            wall: timeline.makespan(),
            compute: self.compute.time(n).max(0.0),
            wire: self.wire.time(n).max(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> StepModel {
        StepModel {
            compute: CostModel::new(1.0, 0.002),
            wire: CostModel::new(0.5, 0.001),
        }
    }

    #[test]
    fn serial_chain_wall_is_the_sum_of_phases() {
        let m = model();
        let p = m.predict(1000.0).expect("serial chain simulates");
        assert!((p.compute - 3.0).abs() < 1e-9);
        assert!((p.wire - 1.5).abs() < 1e-9);
        assert!(
            (p.wall - (p.compute + p.wire)).abs() < 1e-9,
            "no overlap in the serial chain: {p:?}"
        );
    }

    #[test]
    fn multi_step_graph_scales_linearly() {
        let m = model();
        let one = Engine::new()
            .simulate(&m.graph(1000.0, 1))
            .expect("one step")
            .makespan();
        let three = Engine::new()
            .simulate(&m.graph(1000.0, 3))
            .expect("three steps")
            .makespan();
        assert!((three - 3.0 * one).abs() < 1e-9);
    }

    #[test]
    fn zero_workload_still_pays_startup() {
        let p = model().predict(0.0).expect("zero workload simulates");
        assert!((p.wall - 1.5).abs() < 1e-9, "α terms only: {p:?}");
    }
}
