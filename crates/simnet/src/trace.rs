//! Chrome trace-event export of simulated timelines.
//!
//! A simulated Testbed run and a real CPU run should open side-by-side
//! in one viewer — the reproduction's analogue of the paper's
//! profiler-vs-wall-clock validation (§6.2). This module therefore
//! emits a [`Timeline`] in the *same* trace-event schema the `obs`
//! registry exports: one `"X"` complete event per task, one thread row
//! per simulated resource, under a dedicated `pid` so a merged file
//! shows "simnet" as its own process next to the real run.
//!
//! Simulated durations are milliseconds; trace timestamps are µs, so
//! everything scales by 1000 on the way out.

use jsonio::Json;
use obs::TraceBuilder;

use crate::{ResourceId, TaskGraph, Timeline};

/// The simulator's process id in exported traces (the live `obs`
/// registry exports under pid 1).
pub const SIMNET_PID: u64 = 2;

/// Exports `timeline` as a Chrome trace-event document: one thread row
/// per resource (named as in the Gantt chart), one complete event per
/// task with its simulated start/duration, and the makespan under the
/// top-level `"simnet"` key.
///
/// Zero-duration tasks are kept (viewers render them as instants);
/// [`crate::render_gantt`] skips them, which is the one divergence the
/// round-trip test pins down.
#[must_use]
pub fn timeline_trace(graph: &TaskGraph, timeline: &Timeline) -> Json {
    let mut builder = TraceBuilder::new();
    builder.process_name(SIMNET_PID, obs::names::CAT_SIMNET);
    for r in 0..graph.resource_count() {
        let name = graph.resource_name(ResourceId(r)).unwrap_or("<unknown>");
        builder.thread_name(SIMNET_PID, r as u64, name);
    }

    // Emit in start order so per-row timestamps are monotonic (the
    // checker's contract), with issue order breaking exact ties.
    let mut order: Vec<usize> = (0..graph.tasks().len()).collect();
    order.sort_by(|&a, &b| {
        let sa = timeline.spans()[a].start;
        let sb = timeline.spans()[b].start;
        sa.partial_cmp(&sb)
            .expect("simulated times are finite")
            .then(a.cmp(&b))
    });
    for i in order {
        let task = &graph.tasks()[i];
        let span = timeline.spans()[i];
        let ts_us = (span.start * 1000.0).round() as u64;
        let dur_us = (span.duration() * 1000.0).round() as u64;
        builder.complete(
            SIMNET_PID,
            task.resource.index() as u64,
            obs::names::CAT_SIMNET,
            &task.name,
            ts_us,
            dur_us,
            &[],
        );
    }

    builder.into_trace([(
        obs::names::CAT_SIMNET,
        Json::obj([
            ("makespan_ms", Json::from(timeline.makespan())),
            ("tasks", Json::from(graph.tasks().len())),
            ("resources", Json::from(graph.resource_count())),
        ]),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;

    #[test]
    fn exports_every_task_on_its_resource_row() {
        let mut g = TaskGraph::new();
        let c = g.add_resource("compute");
        let l = g.add_resource("link");
        let t1 = g.add_task("xfer", l, 2.0, &[]);
        let _ = g.add_task("gemm", c, 3.0, &[t1]);
        let tl = Engine::new().simulate(&g).unwrap();
        let doc = timeline_trace(&g, &tl);
        let text = doc.to_string().unwrap();
        let stats = obs::validate_trace(&text).unwrap();
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.max_ts_us, 5000, "xfer(2ms) then gemm(3ms)");
        assert_eq!(
            doc.get("simnet")
                .unwrap()
                .get("makespan_ms")
                .unwrap()
                .as_f64()
                .unwrap(),
            5.0
        );
    }
}
