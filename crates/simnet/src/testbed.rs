//! The paper's two evaluation clusters as calibrated presets.
//!
//! Every α/β constant below is taken verbatim from the captions of Fig. 5
//! of the paper (the authors' own least-squares fits on real hardware),
//! with one documented correction: the printed `β_ag = 2.32e-06` for
//! Testbed A is inconsistent with Table 2, where AllGather and
//! ReduceScatter take nearly equal time on equal-size messages
//! (4.6 ms vs 5.4 ms); a 10× β gap would make AllGather 10× slower. We
//! therefore read it as the typo of `2.32e-07` (matching `β_rs =
//! 2.34e-07`). EXPERIMENTS.md records this.

use crate::{CostModel, OpCosts};

/// Which of the paper's clusters a preset models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestbedKind {
    /// Testbed A: 6 nodes × 8 NVIDIA RTX A6000 (NVLink, 200 Gb/s IB).
    A,
    /// Testbed B: 8 nodes × 4 NVIDIA RTX 2080 Ti (PCIe, 100 Gb/s IB).
    B,
}

impl std::fmt::Display for TestbedKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestbedKind::A => write!(f, "Testbed-A"),
            TestbedKind::B => write!(f, "Testbed-B"),
        }
    }
}

/// A simulated GPU cluster: its shape and calibrated per-op cost models.
#[derive(Debug, Clone, PartialEq)]
pub struct Testbed {
    /// Which paper cluster this models.
    pub kind: TestbedKind,
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Calibrated cost models (Fig. 5).
    pub costs: OpCosts,
}

impl Testbed {
    /// Testbed A: the 48-GPU A6000 cluster (6 nodes × 8 GPUs;
    /// `N_MP = N_ESP = 8` in the paper's runs).
    pub fn a() -> Self {
        Testbed {
            kind: TestbedKind::A,
            nodes: 6,
            gpus_per_node: 8,
            costs: OpCosts {
                gemm: CostModel::new(4.26e-2, 2.29e-11),
                a2a: CostModel::new(2.87e-1, 2.21e-7),
                // β corrected from the printed 2.32e-6; see module docs.
                all_gather: CostModel::new(3.37e-1, 2.32e-7),
                reduce_scatter: CostModel::new(3.95e-1, 2.34e-7),
                all_reduce: CostModel::new(5.11e-1, 4.95e-7),
            },
        }
    }

    /// Testbed B: the 32-GPU 2080 Ti cluster (8 nodes × 4 GPUs;
    /// `N_MP = N_ESP = 4`).
    pub fn b() -> Self {
        Testbed {
            kind: TestbedKind::B,
            nodes: 8,
            gpus_per_node: 4,
            costs: OpCosts {
                gemm: CostModel::new(9.24e-2, 4.42e-11),
                a2a: CostModel::new(1.75e-1, 3.06e-7),
                all_gather: CostModel::new(3.20e-2, 1.68e-7),
                reduce_scatter: CostModel::new(3.91e-2, 1.67e-7),
                all_reduce: CostModel::new(8.37e-2, 5.99e-7),
            },
        }
    }

    /// Preset by kind.
    pub fn of(kind: TestbedKind) -> Self {
        match kind {
            TestbedKind::A => Testbed::a(),
            TestbedKind::B => Testbed::b(),
        }
    }

    /// Total GPU count.
    pub fn world_size(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// A copy restricted to `nodes` nodes — used for the varied-`P`
    /// experiment (Fig. 7, P ∈ {16, 32, 48}).
    ///
    /// The inter-node collectives' marginal costs are rescaled by the
    /// cross-node traffic fraction `(n−1)/n`: a ring AllReduce moves
    /// `2(n−1)/n` of the data across links, and an AlltoAll sends
    /// `(n−1)/n` of each buffer off-node — so fewer nodes mean cheaper
    /// per-byte inter-node communication relative to the calibration
    /// point (the preset's full node count).
    pub fn with_nodes(&self, nodes: usize) -> Self {
        let nodes = nodes.max(1);
        let cross = |n: usize| (n.saturating_sub(1)) as f64 / n as f64;
        let factor = if self.nodes > 1 && nodes > 1 {
            cross(nodes) / cross(self.nodes)
        } else {
            1.0
        };
        let mut costs = self.costs;
        costs.a2a.beta *= factor;
        costs.all_reduce.beta *= factor;
        Testbed {
            nodes,
            costs,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_shapes_match_paper() {
        assert_eq!(Testbed::a().world_size(), 48);
        assert_eq!(Testbed::b().world_size(), 32);
        assert_eq!(Testbed::a().gpus_per_node, 8);
        assert_eq!(Testbed::b().gpus_per_node, 4);
    }

    #[test]
    fn of_round_trips() {
        assert_eq!(Testbed::of(TestbedKind::A), Testbed::a());
        assert_eq!(Testbed::of(TestbedKind::B), Testbed::b());
    }

    #[test]
    fn gemm_throughput_is_plausible() {
        // β_gemm implies ~44 TFLOPS on A (A6000-class) and ~23 on B
        // (2080 Ti-class): 1 / (β ms/FLOP) = FLOP/ms.
        let tflops_a = 1.0 / Testbed::a().costs.gemm.beta / 1e9; // FLOP/ms → TFLOPS
        let tflops_b = 1.0 / Testbed::b().costs.gemm.beta / 1e9;
        assert!((30.0..60.0).contains(&tflops_a), "{tflops_a}");
        assert!((15.0..30.0).contains(&tflops_b), "{tflops_b}");
    }

    #[test]
    fn inter_node_costlier_per_byte_than_intra() {
        // On both testbeds AllReduce (inter-node) has the largest β and
        // the node-aligned intra ops (AG/RS) the smallest of the comms.
        for tb in [Testbed::a(), Testbed::b()] {
            assert!(tb.costs.all_reduce.beta > tb.costs.all_gather.beta);
            assert!(tb.costs.all_reduce.beta > tb.costs.reduce_scatter.beta);
        }
    }

    #[test]
    fn with_nodes_rescales() {
        let t = Testbed::a().with_nodes(2);
        assert_eq!(t.world_size(), 16);
        assert_eq!(t.kind, TestbedKind::A);
    }

    #[test]
    fn display_names() {
        assert_eq!(TestbedKind::A.to_string(), "Testbed-A");
        assert_eq!(TestbedKind::B.to_string(), "Testbed-B");
    }
}
