//! Discrete-event cluster simulator for FSMoE-RS.
//!
//! The paper evaluates schedules by wall-clock time on two GPU clusters.
//! Those clusters are unavailable here, so every timing experiment runs on
//! this simulator instead, with task durations supplied by the *same α–β
//! linear performance models the paper itself fits and validates*
//! (§4.1/§6.2, Fig. 5 — r² > 0.998 for every op). Scheduling quality is a
//! pure function of task durations plus resource-exclusivity constraints,
//! both of which the simulator enforces, so relative speedups ("who wins,
//! by how much, where the crossovers fall") are preserved.
//!
//! # Model
//!
//! * A [`TaskGraph`] holds tasks; each names an exclusive [`ResourceId`]
//!   (a GPU compute stream, an intra-node link, an inter-node link), a
//!   duration, and dependencies.
//! * Resources execute their tasks **in issue order** with head-of-line
//!   blocking — exactly the semantics of CUDA/NCCL streams, which is what
//!   makes the lowering of a pipelined schedule faithful: two collectives
//!   issued on the same link serialize (the §5 contention between
//!   AlltoAll and Gradient-AllReduce), while work on different streams
//!   overlaps.
//! * [`Engine::simulate`] produces a deterministic [`Timeline`].
//!
//! # Example
//!
//! ```
//! use simnet::{Engine, TaskGraph};
//!
//! let mut g = TaskGraph::new();
//! let compute = g.add_resource("gpu0.compute");
//! let link = g.add_resource("node0.nic");
//! let a2a = g.add_task("a2a", link, 2.0, &[]);
//! let experts = g.add_task("experts", compute, 3.0, &[a2a]);
//! let combine = g.add_task("combine", link, 2.0, &[experts]);
//! let tl = Engine::new().simulate(&g).unwrap();
//! assert_eq!(tl.makespan(), 7.0);
//! assert_eq!(tl.span(combine).start, 5.0);
//! ```

mod cost;
mod engine;
mod error;
mod gantt;
mod gray;
mod migrate;
mod reconfig;
mod stepmodel;
mod task;
mod testbed;
mod trace;

pub use cost::{CostModel, OpCosts};
pub use engine::{Engine, Span, Straggler, Timeline};
pub use error::SimError;
pub use gantt::render_gantt;
pub use gray::{price_gray_failure, GrayFailureCost};
pub use migrate::{add_migration_tasks, price_migration, MigrationCost};
pub use reconfig::{add_reconfiguration_tasks, price_reconfiguration, ReconfigCost};
pub use stepmodel::{StepModel, StepPrediction};
pub use task::{ResourceId, Task, TaskGraph, TaskId};
pub use testbed::{Testbed, TestbedKind};
pub use trace::{timeline_trace, SIMNET_PID};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
