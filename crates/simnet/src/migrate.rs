//! Pricing an eviction-free hot-expert migration.
//!
//! Rebalancing a skewed fleet by moving one expert (DESIGN.md §10) pays
//! three sequential phases: *quiesce* (the world-wide migration fence —
//! an AllReduce-shaped exchange of one fence word that drains in-flight
//! collectives), *transfer* (the expert's weights move from the source
//! rank to the destination; priced on the AlltoAll model, the
//! simulator's point-to-point stand-in), and *rebind* (the destination
//! rebuilds its local shard set and every rank installs the new
//! placement — pure local work). Pricing these with the same α–β
//! models as the rest of the simulator lets a planner weigh "migrate
//! the hot expert now" against "keep limping with a skewed fleet", and
//! against the far heavier eviction pipeline
//! ([`price_reconfiguration`](crate::price_reconfiguration)).

use crate::{OpCosts, ResourceId, TaskGraph, TaskId};

/// The per-phase cost breakdown of one expert migration, in ms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationCost {
    /// The world-wide fence that quiesces in-flight collectives
    /// (AllReduce of one 8-byte fence word).
    pub quiesce: f64,
    /// Moving the expert's weights source → destination (AlltoAll
    /// model as the point-to-point stand-in).
    pub transfer: f64,
    /// Local shard rebuild + placement install on every rank.
    pub rebind: f64,
}

impl MigrationCost {
    /// Total pause: the phases are strictly sequential (the transfer
    /// cannot start before the fence completes, the rebind needs the
    /// transferred weights).
    pub fn total(&self) -> f64 {
        self.quiesce + self.transfer + self.rebind
    }
}

/// Prices one eviction-free expert migration.
///
/// * `world` — live rank count (the fence spans the whole world).
/// * `expert_bytes` — the migrated expert's weight payload.
/// * `rebind_ms` — local rebuild time on the destination (measured or
///   modeled; clamped to ≥ 0).
///
/// The fence exchanges one 8-byte word per rank. Unlike an eviction
/// there is no detection deadline to sit out and no snapshot to
/// reload, which is why a migration prices far below a
/// reconfiguration for the same payload.
pub fn price_migration(
    costs: &OpCosts,
    world: usize,
    expert_bytes: f64,
    rebind_ms: f64,
) -> MigrationCost {
    let world = world.max(1) as f64;
    MigrationCost {
        quiesce: costs.all_reduce.time(8.0 * world),
        transfer: costs.a2a.time(expert_bytes.max(0.0)),
        rebind: rebind_ms.max(0.0),
    }
}

/// Appends the migration as a sequential chain of tasks on `resource`
/// (the link the fence and transfer serialise on), after `deps`.
/// Returns the final task — schedule the resumed training after it.
pub fn add_migration_tasks(
    graph: &mut TaskGraph,
    resource: ResourceId,
    cost: &MigrationCost,
    deps: &[TaskId],
) -> TaskId {
    let quiesce = graph.add_task("migrate.quiesce", resource, cost.quiesce, deps);
    let transfer = graph.add_task("migrate.transfer", resource, cost.transfer, &[quiesce]);
    graph.add_task("migrate.rebind", resource, cost.rebind, &[transfer])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{price_reconfiguration, Engine, Testbed};

    #[test]
    fn phases_follow_the_alpha_beta_models() {
        let costs = Testbed::a().costs;
        let c = price_migration(&costs, 4, 2e6, 3.0);
        assert_eq!(c.quiesce, costs.all_reduce.time(32.0));
        assert_eq!(c.transfer, costs.a2a.time(2e6));
        assert_eq!(c.rebind, 3.0);
        assert!((c.total() - (c.quiesce + c.transfer + c.rebind)).abs() < 1e-12);
    }

    #[test]
    fn cost_is_monotone_in_every_input() {
        let costs = Testbed::b().costs;
        let base = price_migration(&costs, 4, 2e6, 3.0).total();
        assert!(price_migration(&costs, 8, 2e6, 3.0).total() > base);
        assert!(price_migration(&costs, 4, 4e6, 3.0).total() > base);
        assert!(price_migration(&costs, 4, 2e6, 6.0).total() > base);
    }

    #[test]
    fn degenerate_inputs_clamp_instead_of_poisoning() {
        let costs = Testbed::a().costs;
        let c = price_migration(&costs, 0, -5.0, -2.0);
        // Zero-byte collectives still pay their startup α.
        assert_eq!(c.quiesce, costs.all_reduce.time(8.0));
        assert_eq!(c.transfer, costs.a2a.alpha);
        assert_eq!(c.rebind, 0.0);
        assert!(c.total().is_finite());
    }

    #[test]
    fn migration_prices_far_below_eviction_for_the_same_payload() {
        let costs = Testbed::a().costs;
        let migrate = price_migration(&costs, 4, 2e6, 3.0);
        // The eviction moves the same orphan payload but also sits out
        // the detection deadline and reloads a full snapshot.
        let evict = price_reconfiguration(&costs, 4, 50.0, 2e6, 8e6);
        assert!(
            migrate.total() < evict.total(),
            "migration {} should undercut eviction {}",
            migrate.total(),
            evict.total()
        );
    }

    #[test]
    fn tasks_extend_the_critical_path_by_exactly_the_total() {
        let costs = Testbed::a().costs;
        let cost = price_migration(&costs, 4, 1e6, 2.0);
        let mut g = TaskGraph::new();
        let link = g.add_resource("node0.nic");
        let step = g.add_task("train.step", link, 3.0, &[]);
        let last = add_migration_tasks(&mut g, link, &cost, &[step]);
        let resume = g.add_task("train.resume", link, 3.0, &[last]);
        let tl = Engine::new().simulate(&g).unwrap();
        assert!((tl.makespan() - (6.0 + cost.total())).abs() < 1e-9);
        assert!((tl.span(resume).start - (3.0 + cost.total())).abs() < 1e-9);
    }
}
