//! α–β linear cost models (paper §4.1, Eq. 1).

/// A linear time model `t(n) = α + n·β`.
///
/// `α` is the startup (launch/latency) term in milliseconds; `β` is the
/// marginal cost per unit of work — per byte for communication ops, per
/// FLOP for GEMM. The paper validates this model class with r² > 0.998 on
/// both testbeds (Fig. 5), which is what licenses simulating on it.
///
/// ```
/// use simnet::CostModel;
///
/// let a2a = CostModel::new(0.287, 2.21e-7);
/// assert!((a2a.time(1_000_000.0) - 0.508).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Startup time, ms.
    pub alpha: f64,
    /// Time per unit of work (byte or FLOP), ms.
    pub beta: f64,
}

impl CostModel {
    /// Creates a model from its two coefficients.
    pub fn new(alpha: f64, beta: f64) -> Self {
        CostModel { alpha, beta }
    }

    /// Predicted time for workload `n` (bytes or FLOPs). Zero workload
    /// still pays the startup cost.
    pub fn time(&self, n: f64) -> f64 {
        self.alpha + n * self.beta
    }

    /// Predicted time for a workload split into `r` equal chunks, per
    /// chunk: `α + (n/r)·β` — the paper's `t_{*,r}` (Eq. 1).
    pub fn time_chunked(&self, n: f64, r: u32) -> f64 {
        self.alpha + n / f64::from(r.max(1)) * self.beta
    }

    /// Workload that fits in a time budget: the inverse model
    /// `g⁻¹(t) = (t − α)/β`, clamped at 0 (paper §5.1).
    pub fn invert(&self, t: f64) -> f64 {
        if self.beta <= 0.0 {
            0.0
        } else {
            ((t - self.alpha) / self.beta).max(0.0)
        }
    }

    /// Scales both coefficients — used for the backward phase where the
    /// expert GEMM count doubles (§4.4 sets α, β, n to twice the forward
    /// values).
    pub fn scaled(&self, factor: f64) -> CostModel {
        CostModel {
            alpha: self.alpha * factor,
            beta: self.beta * factor,
        }
    }
}

/// The full set of per-op cost models a testbed exposes.
///
/// Communication workloads are measured in bytes, GEMM workloads in
/// FLOPs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCosts {
    /// General matrix multiply (per FLOP).
    pub gemm: CostModel,
    /// AlltoAll dispatch/combine (inter-node when node-aligned).
    pub a2a: CostModel,
    /// AllGather (intra-node ESP traffic when node-aligned).
    pub all_gather: CostModel,
    /// ReduceScatter (intra-node ESP traffic when node-aligned).
    pub reduce_scatter: CostModel,
    /// AllReduce (the DP Gradient-AllReduce, inter-node).
    pub all_reduce: CostModel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_is_affine() {
        let m = CostModel::new(1.0, 0.5);
        assert_eq!(m.time(0.0), 1.0);
        assert_eq!(m.time(10.0), 6.0);
    }

    #[test]
    fn chunked_time_pays_alpha_per_chunk() {
        let m = CostModel::new(1.0, 1.0);
        let n = 8.0;
        // one chunk: 1 + 8 = 9; four chunks: each 1 + 2 = 3, total 12
        assert_eq!(m.time_chunked(n, 1), 9.0);
        assert_eq!(m.time_chunked(n, 4), 3.0);
        assert_eq!(4.0 * m.time_chunked(n, 4), 12.0);
    }

    #[test]
    fn chunked_guards_r_zero() {
        let m = CostModel::new(1.0, 1.0);
        assert_eq!(m.time_chunked(8.0, 0), m.time_chunked(8.0, 1));
    }

    #[test]
    fn invert_round_trips_and_clamps() {
        let m = CostModel::new(0.2, 2.0);
        let n = 42.0;
        assert!((m.invert(m.time(n)) - n).abs() < 1e-12);
        assert_eq!(m.invert(0.1), 0.0, "below startup clamps to zero");
        assert_eq!(CostModel::new(1.0, 0.0).invert(5.0), 0.0);
    }

    #[test]
    fn scaled_doubles_both_terms() {
        let m = CostModel::new(0.3, 0.7).scaled(2.0);
        assert_eq!(m.alpha, 0.6);
        assert_eq!(m.beta, 1.4);
    }
}
