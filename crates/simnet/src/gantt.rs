//! ASCII Gantt rendering of simulated timelines.
//!
//! The `fig3_timeline` and `fig4_cases` bench binaries use this to
//! regenerate the schedule diagrams of Figs. 3 and 4 as text.

use crate::{TaskGraph, Timeline};

/// Renders a timeline as an ASCII Gantt chart, one row per resource.
///
/// `width` is the number of character columns the makespan maps onto.
/// Each task paints its span with the first character of its name;
/// a legend follows the chart.
pub fn render_gantt(graph: &TaskGraph, timeline: &Timeline, width: usize) -> String {
    let width = width.max(10);
    let makespan = timeline.makespan().max(f64::EPSILON);
    let n_res = graph.resource_count();
    let mut rows = vec![vec![b'.'; width]; n_res];
    let mut legend: Vec<(char, String)> = Vec::new();

    for (i, task) in graph.tasks().iter().enumerate() {
        let span = timeline.spans()[i];
        if span.duration() <= 0.0 {
            continue;
        }
        // glyph: first char of the final dot-separated segment, so
        // "b3.moe.AG0" renders as 'A' rather than everything as 'b'
        let seg = task.name.rsplit('.').next().unwrap_or(&task.name);
        let c = seg.chars().next().unwrap_or('?');
        if !legend.iter().any(|(lc, ln)| *lc == c && *ln == task.name) {
            legend.push((c, task.name.clone()));
        }
        let start = ((span.start / makespan) * width as f64).floor() as usize;
        let end = (((span.end / makespan) * width as f64).ceil() as usize).min(width);
        let row = &mut rows[task.resource.index()];
        for cell in row
            .iter_mut()
            .take(end.max(start + 1).min(width))
            .skip(start)
        {
            *cell = c as u8;
        }
    }

    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        let name = graph
            .resource_name(crate::ResourceId(r))
            .unwrap_or("<unknown>");
        out.push_str(&format!("{name:>14} |"));
        out.push_str(&String::from_utf8_lossy(row));
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:>14} 0{}{:.3} ms\n",
        "",
        " ".repeat(width.saturating_sub(9)),
        timeline.makespan()
    ));
    let mut sorted = legend;
    sorted.sort();
    sorted.dedup();
    out.push_str("legend: ");
    let mut seen_chars = std::collections::BTreeSet::new();
    for (c, name) in &sorted {
        if seen_chars.insert(*c) {
            out.push_str(&format!("{c}={name} "));
        }
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, TaskGraph};

    #[test]
    fn renders_rows_and_legend() {
        let mut g = TaskGraph::new();
        let c = g.add_resource("compute");
        let l = g.add_resource("link");
        let t1 = g.add_task("xfer", l, 2.0, &[]);
        let _ = g.add_task("gemm", c, 3.0, &[t1]);
        let tl = Engine::new().simulate(&g).unwrap();
        let chart = render_gantt(&g, &tl, 40);
        assert!(chart.contains("compute"));
        assert!(chart.contains("link"));
        assert!(chart.contains("x=xfer"));
        assert!(chart.contains("g=gemm"));
        // link busy first 2/5 of the chart, compute the last 3/5
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[1].contains('x'));
        assert!(lines[0].contains('g'));
    }

    #[test]
    fn empty_timeline_renders() {
        let g = TaskGraph::new();
        let tl = Engine::new().simulate(&g).unwrap();
        let chart = render_gantt(&g, &tl, 20);
        assert!(chart.contains("legend"));
    }

    #[test]
    fn zero_duration_tasks_skipped() {
        let mut g = TaskGraph::new();
        let c = g.add_resource("compute");
        let _ = g.add_task("instant", c, 0.0, &[]);
        let _ = g.add_task("real", c, 1.0, &[]);
        let tl = Engine::new().simulate(&g).unwrap();
        let chart = render_gantt(&g, &tl, 20);
        assert!(!chart.contains("i=instant"));
        assert!(chart.contains("r=real"));
    }
}
