//! Task-graph intermediate representation.
//!
//! Every schedule in the reproduction — DeepSpeed-MoE's sequential
//! execution, Tutel/PipeMoE's pipelining, and FSMoE's inter/intra-node
//! co-scheduling — lowers to this one IR, so simulated comparisons measure
//! the schedules themselves.

use crate::{Result, SimError};

/// Identifies an exclusive execution resource (a stream or a link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    /// The raw index of this resource.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifies a task within its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// The raw index of this task.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One unit of work bound to a resource.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Human-readable label (shows up in Gantt output).
    pub name: String,
    /// Resource the task occupies exclusively while running.
    pub resource: ResourceId,
    /// Duration in milliseconds.
    pub duration: f64,
    /// Tasks that must complete before this one starts.
    pub deps: Vec<TaskId>,
}

/// A dependency graph of tasks over named resources.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    resources: Vec<String>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Registers a resource (stream/link) and returns its id.
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        self.resources.push(name.into());
        ResourceId(self.resources.len() - 1)
    }

    /// Appends a task. Issue order on each resource is the order of
    /// `add_task` calls, mirroring kernel-launch order on a CUDA stream.
    ///
    /// # Panics
    ///
    /// Panics on an unknown resource, unknown dependency, or invalid
    /// duration — these are programming errors in schedule lowering, not
    /// runtime conditions.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        resource: ResourceId,
        duration: f64,
        deps: &[TaskId],
    ) -> TaskId {
        let name = name.into();
        assert!(
            resource.0 < self.resources.len(),
            "unknown resource {} for task {name:?}",
            resource.0
        );
        assert!(
            duration.is_finite() && duration >= 0.0,
            "task {name:?} has invalid duration {duration}"
        );
        for d in deps {
            assert!(
                d.0 < self.tasks.len(),
                "task {name:?} depends on unknown task {}",
                d.0
            );
        }
        self.tasks.push(Task {
            name,
            resource,
            duration,
            deps: deps.to_vec(),
        });
        TaskId(self.tasks.len() - 1)
    }

    /// All tasks in issue order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Name of a resource.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownResource`] for out-of-range ids.
    pub fn resource_name(&self, id: ResourceId) -> Result<&str> {
        self.resources
            .get(id.0)
            .map(String::as_str)
            .ok_or(SimError::UnknownResource { id: id.0 })
    }

    /// The task with id `id`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownTask`] for out-of-range ids.
    pub fn task(&self, id: TaskId) -> Result<&Task> {
        self.tasks
            .get(id.0)
            .ok_or(SimError::UnknownTask { id: id.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_graph() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("compute");
        let a = g.add_task("a", r, 1.0, &[]);
        let b = g.add_task("b", r, 2.0, &[a]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.resource_count(), 1);
        assert_eq!(g.task(b).unwrap().deps, vec![a]);
        assert_eq!(g.resource_name(r).unwrap(), "compute");
        assert!(!g.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_panics() {
        let mut g = TaskGraph::new();
        let _ = g.add_task("x", ResourceId(3), 1.0, &[]);
    }

    #[test]
    #[should_panic(expected = "depends on unknown task")]
    fn unknown_dep_panics() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("compute");
        let _ = g.add_task("x", r, 1.0, &[TaskId(7)]);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn bad_duration_panics() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("compute");
        let _ = g.add_task("x", r, f64::NAN, &[]);
    }

    #[test]
    fn lookup_errors() {
        let g = TaskGraph::new();
        assert!(g.task(TaskId(0)).is_err());
        assert!(g.resource_name(ResourceId(0)).is_err());
    }
}
