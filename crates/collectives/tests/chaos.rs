//! Chaos property test: random single-fault schedules over small worlds.
//!
//! The liveness property under test: with a deadline armed, **every**
//! rank's every collective call returns (`Ok` or a typed `Err`) — no
//! schedule of kills, stragglers, payload drops or persistent brownouts
//! may hang any rank. Injected delays are capped at 200 ms (brownout
//! mean delays at a quarter of that) and the per-op deadline at 500 ms,
//! so no case ever sleeps anywhere near the 2 s ceiling the repo's test
//! policy allows. A browned-out rank limps *inside* the deadline — the
//! run must finish cleanly, because slow-but-alive is exactly the
//! failure the deadline machinery must not confuse with dead.

use std::time::Duration;

use collectives::{run_world_within, Brownout, CommError, CommWorld, FaultInjector};
use proptest::prelude::*;

const OPS: usize = 4;
const DEADLINE: Duration = Duration::from_millis(500);
const MAX_DELAY_MS: u64 = 200;
/// Watchdog: OPS deadlines + max delay + generous scheduling slack.
const BUDGET: Duration = Duration::from_secs(10);

fn fault_is_typed(err: &CommError) -> bool {
    matches!(
        err,
        CommError::Timeout { .. }
            | CommError::RankDown { .. }
            | CommError::Poisoned { .. }
            | CommError::Abandoned { .. }
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_single_fault_terminates_every_rank(
        world in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let _doctor = parking_lot::lock_doctor::check_guard();
        let injector =
            FaultInjector::single_fault_from_seed(seed, world, OPS, MAX_DELAY_MS);
        let events = injector.events();
        let browned = injector.brownouts();
        prop_assert_eq!(
            events.len() + browned.len(), 1,
            "single-fault schedules carry exactly one fault"
        );
        let comm_world = CommWorld::new(world)
            .with_deadline(DEADLINE)
            .with_faults(injector);

        // Each rank runs a fixed SPMD script of collectives, stopping at
        // its first error (a dead rank must not keep calling; peers of a
        // stopped rank time out, which is itself a valid outcome).
        let results = run_world_within(comm_world, BUDGET, move |comm| {
            let g = comm.world_group();
            let n = comm.world_size();
            let mut outcomes: Vec<Result<(), CommError>> = Vec::new();
            for _ in 0..OPS {
                let mut v = vec![comm.rank() as f32; n];
                let res = g.all_to_all(&v).map(|_| ()).and_then(|()| {
                    v.fill(1.0);
                    g.all_reduce(&mut v)
                });
                let failed = res.is_err();
                outcomes.push(res);
                if failed {
                    break;
                }
            }
            outcomes
        });

        // The watchdog already proved liveness; check error typing and
        // the SPMD prefix property: every error is a fault-family error.
        for (rank, outcomes) in results.iter().enumerate() {
            prop_assert!(!outcomes.is_empty());
            for res in outcomes {
                if let Err(e) = res {
                    prop_assert!(
                        fault_is_typed(e),
                        "rank {} got non-fault error {:?} under schedule {:?}",
                        rank, e, events
                    );
                }
            }
            // Errors only terminate the script, never appear mid-stream.
            let first_err = outcomes.iter().position(Result::is_err);
            if let Some(i) = first_err {
                prop_assert_eq!(i, outcomes.len() - 1);
            }
        }
    }

    #[test]
    fn seeded_schedules_are_reproducible(seed in any::<u64>()) {
        let _doctor = parking_lot::lock_doctor::check_guard();
        let a = FaultInjector::single_fault_from_seed(seed, 8, OPS, MAX_DELAY_MS);
        let b = FaultInjector::single_fault_from_seed(seed, 8, OPS, MAX_DELAY_MS);
        prop_assert_eq!(a.events(), b.events());
        prop_assert_eq!(a.brownouts(), b.brownouts());
    }

    /// A brownout alone must never break liveness or correctness: every
    /// op completes `Ok` on every rank (the slow rank limps within the
    /// deadline), results are numerically right, and the same spec+seed
    /// reproduces — the gray-failure half of the chaos-soak gap fix.
    #[test]
    fn brownout_runs_finish_with_correct_results(
        world in 2usize..=4,
        victim_seed in any::<u64>(),
        mean_ms in 1u64..=25,
    ) {
        let _doctor = parking_lot::lock_doctor::check_guard();
        let victim = (victim_seed % world as u64) as usize;
        let spec = Brownout {
            mean_delay: Duration::from_millis(mean_ms),
            jitter_pct: 30,
            stutter_every: 3,
            stutter_delay: Duration::from_millis(mean_ms),
            from_op: 1,
        };
        let injector = FaultInjector::new().brownout(victim, spec, victim_seed);
        let comm_world = CommWorld::new(world)
            .with_deadline(DEADLINE)
            .with_faults(injector);
        let results = run_world_within(comm_world, BUDGET, move |comm| {
            let g = comm.world_group();
            let n = comm.world_size();
            let mut sums = Vec::new();
            for _ in 0..OPS {
                let mut v = vec![1.0f32; n];
                g.all_reduce(&mut v)?;
                sums.push(v[0]);
            }
            Ok::<_, CommError>(sums)
        });
        for (rank, res) in results.iter().enumerate() {
            match res {
                Ok(sums) => {
                    prop_assert_eq!(sums.len(), OPS);
                    for &s in sums {
                        prop_assert_eq!(s, world as f32, "rank {} sum", rank);
                    }
                }
                Err(e) => prop_assert!(
                    false,
                    "rank {} must limp to completion, got {:?}", rank, e
                ),
            }
        }
    }
}
