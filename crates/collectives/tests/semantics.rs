//! Multi-rank semantic tests: every collective's algebraic post-condition,
//! exercised over real threads.

use collectives::{run_ranks, CommWorld, HybridTopology, ParallelDims};

#[test]
fn all_reduce_is_elementwise_sum() {
    let results = run_ranks(4, |comm| {
        let g = comm.world_group();
        let mut data = vec![comm.rank() as f32, 10.0 * comm.rank() as f32];
        g.all_reduce(&mut data).unwrap();
        data
    });
    for r in results {
        assert_eq!(r, vec![6.0, 60.0]);
    }
}

#[test]
fn all_gather_concatenates_in_rank_order() {
    let results = run_ranks(3, |comm| {
        let g = comm.world_group();
        g.all_gather(&[comm.rank() as f32, -(comm.rank() as f32)])
            .unwrap()
    });
    for r in results {
        assert_eq!(r, vec![0.0, 0.0, 1.0, -1.0, 2.0, -2.0]);
    }
}

#[test]
fn reduce_scatter_sums_then_slices() {
    let results = run_ranks(2, |comm| {
        let g = comm.world_group();
        // rank 0: [1,2,3,4], rank 1: [10,20,30,40] → sum [11,22,33,44]
        let base = if comm.rank() == 0 { 1.0 } else { 10.0 };
        let data: Vec<f32> = (1..=4).map(|i| base * i as f32).collect();
        g.reduce_scatter(&data).unwrap()
    });
    assert_eq!(results[0], vec![11.0, 22.0]);
    assert_eq!(results[1], vec![33.0, 44.0]);
}

#[test]
fn reduce_scatter_then_all_gather_equals_all_reduce() {
    let results = run_ranks(4, |comm| {
        let g = comm.world_group();
        let data: Vec<f32> = (0..8).map(|i| (comm.rank() * 8 + i) as f32).collect();
        let scattered = g.reduce_scatter(&data).unwrap();
        let via_rs_ag = g.all_gather(&scattered).unwrap();
        let mut via_ar = data;
        g.all_reduce(&mut via_ar).unwrap();
        (via_rs_ag, via_ar)
    });
    for (a, b) in results {
        assert_eq!(a, b);
    }
}

#[test]
fn all_to_all_transposes_chunks() {
    let results = run_ranks(3, |comm| {
        let g = comm.world_group();
        // rank r sends value r*10 + destination
        let data: Vec<f32> = (0..3).map(|d| (comm.rank() * 10 + d) as f32).collect();
        g.all_to_all(&data).unwrap()
    });
    // rank d receives [0d, 1d, 2d]
    for (d, r) in results.iter().enumerate() {
        let expect: Vec<f32> = (0..3).map(|s| (s * 10 + d) as f32).collect();
        assert_eq!(r, &expect);
    }
}

#[test]
fn all_to_all_is_an_involution_for_two_ranks() {
    let results = run_ranks(2, |comm| {
        let g = comm.world_group();
        let data: Vec<f32> = (0..6).map(|i| (comm.rank() * 100 + i) as f32).collect();
        let once = g.all_to_all(&data).unwrap();
        let twice = g.all_to_all(&once).unwrap();
        (data, twice)
    });
    for (orig, round_trip) in results {
        assert_eq!(orig, round_trip);
    }
}

#[test]
fn all_to_all_preserves_multiset() {
    let results = run_ranks(4, |comm| {
        let g = comm.world_group();
        let data: Vec<f32> = (0..8).map(|i| (comm.rank() * 8 + i) as f32).collect();
        (data.clone(), g.all_to_all(&data).unwrap())
    });
    let mut sent: Vec<f32> = results.iter().flat_map(|(s, _)| s.clone()).collect();
    let mut recv: Vec<f32> = results.iter().flat_map(|(_, r)| r.clone()).collect();
    sent.sort_by(f32::total_cmp);
    recv.sort_by(f32::total_cmp);
    assert_eq!(sent, recv);
}

#[test]
fn broadcast_copies_root() {
    let results = run_ranks(3, |comm| {
        let g = comm.world_group();
        let mut data = vec![comm.rank() as f32 + 1.0; 4];
        g.broadcast(1, &mut data).unwrap();
        data
    });
    for r in results {
        assert_eq!(r, vec![2.0; 4]);
    }
}

#[test]
fn bad_buffer_lengths_error() {
    let results = run_ranks(2, |comm| {
        let g = comm.world_group();
        let a2a_err = g.all_to_all(&[1.0, 2.0, 3.0]).is_err();
        let rs_err = g.reduce_scatter(&[1.0]).is_err();
        let bcast_err = g.broadcast(5, &mut [1.0]).is_err();
        // A real collective afterwards still works (errors don't poison).
        let mut v = vec![1.0];
        g.all_reduce(&mut v).unwrap();
        (a2a_err, rs_err, bcast_err, v[0])
    });
    for (a, b, c, sum) in results {
        assert!(a && b && c);
        assert_eq!(sum, 2.0);
    }
}

#[test]
fn disjoint_subgroups_operate_independently() {
    let results = run_ranks(4, |comm| {
        let pair = if comm.rank() < 2 {
            vec![0, 1]
        } else {
            vec![2, 3]
        };
        let g = comm.subgroup(&pair).unwrap();
        let mut v = vec![comm.rank() as f32];
        g.all_reduce(&mut v).unwrap();
        v[0]
    });
    assert_eq!(results, vec![1.0, 1.0, 5.0, 5.0]);
}

#[test]
fn overlapping_group_families_compose() {
    // The Fig. 2 scenario: intra-node MP groups and cross-node EP groups
    // used back to back by all 4 ranks.
    let topo = HybridTopology::new(
        2,
        2,
        ParallelDims {
            dp: 2,
            mp: 2,
            ep: 2,
            esp: 2,
        },
    )
    .unwrap();
    let results = run_ranks(4, move |comm| {
        let mp = comm.subgroup(&topo.mp_group(comm.rank())).unwrap();
        let ep = comm.subgroup(&topo.ep_group(comm.rank())).unwrap();
        let mut v = vec![comm.rank() as f32];
        mp.all_reduce(&mut v).unwrap(); // {0,1}→1, {2,3}→5
        ep.all_reduce(&mut v).unwrap(); // {0,2}: 1+5=6; {1,3}: 1+5=6
        v[0]
    });
    assert_eq!(results, vec![6.0; 4]);
}

#[test]
fn repeated_collectives_do_not_cross_talk() {
    // Back-to-back collectives on one group must not leak state between
    // generations even when some ranks race ahead.
    let results = run_ranks(3, |comm| {
        let g = comm.world_group();
        let mut totals = Vec::new();
        for round in 0..50 {
            let mut v = vec![(comm.rank() + round) as f32];
            g.all_reduce(&mut v).unwrap();
            totals.push(v[0]);
        }
        totals
    });
    for r in results {
        for (round, v) in r.iter().enumerate() {
            assert_eq!(*v, (3 * round + 3) as f32);
        }
    }
}

#[test]
fn barrier_synchronizes() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    let counter = Arc::new(AtomicUsize::new(0));
    let c2 = Arc::clone(&counter);
    let results = run_ranks(4, move |comm| {
        let g = comm.world_group();
        c2.fetch_add(1, Ordering::SeqCst);
        g.barrier().unwrap();
        // after the barrier, every rank must observe all 4 arrivals
        c2.load(Ordering::SeqCst)
    });
    for r in results {
        assert_eq!(r, 4);
    }
}

#[test]
fn large_world_all_reduce() {
    let n = 16;
    let results = run_ranks(n, move |comm| {
        let g = comm.world_group();
        let mut v = vec![1.0f32; 1000];
        g.all_reduce(&mut v).unwrap();
        v
    });
    for r in results {
        assert!(r.iter().all(|&v| v == n as f32));
    }
}

#[test]
fn world_size_accessor() {
    let w = CommWorld::new(5);
    assert_eq!(w.size(), 5);
}
