//! Property-based tests for the collectives runtime: algebraic
//! post-conditions over random world sizes and payloads, plus topology
//! invariants over random parallel layouts.

use collectives::{run_ranks, HybridTopology, ParallelDims};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_reduce_equals_sum_of_inputs(
        world in 1usize..6,
        len in 1usize..20,
        seed in any::<u64>(),
    ) {
        let results = run_ranks(world, move |comm| {
            let g = comm.world_group();
            let mut data: Vec<f32> = (0..len)
                .map(|i| ((seed as usize + comm.rank() * 31 + i) % 17) as f32)
                .collect();
            let mine = data.clone();
            g.all_reduce(&mut data).unwrap();
            (mine, data)
        });
        let mut expect = vec![0.0f32; len];
        for (mine, _) in &results {
            for (e, v) in expect.iter_mut().zip(mine) {
                *e += v;
            }
        }
        for (_, reduced) in &results {
            prop_assert_eq!(reduced, &expect);
        }
    }

    #[test]
    fn all_to_all_twice_is_identity(
        world in 1usize..6,
        chunk in 1usize..6,
        seed in any::<u64>(),
    ) {
        let results = run_ranks(world, move |comm| {
            let g = comm.world_group();
            let data: Vec<f32> = (0..world * chunk)
                .map(|i| ((seed as usize).wrapping_add(comm.rank() * 97 + i) % 251) as f32)
                .collect();
            let once = g.all_to_all(&data).unwrap();
            let twice = g.all_to_all(&once).unwrap();
            (data, twice)
        });
        for (orig, twice) in results {
            prop_assert_eq!(orig, twice);
        }
    }

    #[test]
    fn gather_then_scatter_inverts(
        world in 1usize..5,
        chunk in 1usize..5,
    ) {
        // reduce_scatter(all_gather(x) replicated) returns world·x
        let results = run_ranks(world, move |comm| {
            let g = comm.world_group();
            let data: Vec<f32> = (0..chunk).map(|i| (comm.rank() * 10 + i) as f32).collect();
            let gathered = g.all_gather(&data).unwrap();
            let back = g.reduce_scatter(&gathered).unwrap();
            (data, back)
        });
        for (orig, back) in results {
            let expect: Vec<f32> = orig.iter().map(|v| v * world as f32).collect();
            prop_assert_eq!(back, expect);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topology_groups_always_partition(
        nodes in 1usize..6,
        gpn_pow in 0u32..4,
        ep_pow in 0u32..3,
    ) {
        let gpn = 2usize.pow(gpn_pow);
        let p = nodes * gpn;
        // choose ep as a divisor-compatible split of P
        let ep = 2usize.pow(ep_pow.min((p as f64).log2() as u32));
        prop_assume!(p % ep == 0);
        let esp = p / ep;
        prop_assume!(gpn % esp == 0 || esp % gpn == 0);
        let dims = ParallelDims { dp: p / gpn.min(p), mp: gpn.min(p), ep, esp };
        prop_assume!(dims.dp * dims.mp == p);
        let Ok(t) = HybridTopology::new(nodes, gpn, dims) else {
            return Ok(()); // rejected configs are fine — constructor is the validator
        };
        for group_fn in [
            HybridTopology::mp_group,
            HybridTopology::esp_group,
            HybridTopology::ep_group,
            HybridTopology::dp_group,
        ] {
            let mut membership = vec![None; p];
            for (r, slot) in membership.iter_mut().enumerate() {
                let g = group_fn(&t, r);
                prop_assert!(g.contains(&r));
                // group membership is symmetric: everyone in my group
                // computes the same group
                for &m in &g {
                    let gm = group_fn(&t, m);
                    prop_assert_eq!(&g, &gm);
                }
                *slot = Some(g);
            }
        }
    }
}
