//! Adaptive-deadline controller integration tests: budgets on a live
//! world, SPMD determinism of budget derivation, and the interaction
//! between latency spikes and sustained brownouts.

use std::sync::Arc;
use std::time::Duration;

use collectives::{
    run_world_within, Brownout, CommWorld, DeadlineConfig, DeadlineController, FaultInjector,
};
use proptest::prelude::*;

const BUDGET: Duration = Duration::from_secs(10);

fn config() -> DeadlineConfig {
    DeadlineConfig {
        floor: Duration::from_millis(50),
        ceiling: Duration::from_secs(2),
        slack: 4.0,
        window: 16,
    }
}

#[test]
fn adaptive_world_completes_and_learns_op_costs() {
    let _doctor = parking_lot::lock_doctor::check_guard();
    let controller = DeadlineController::shared(config());
    let world = CommWorld::new(3).with_adaptive_deadlines(Arc::clone(&controller));
    let results = run_world_within(world, BUDGET, |comm| {
        let g = comm.world_group();
        let mut sums = Vec::new();
        for _ in 0..4 {
            let mut v = vec![1.0f32; 3];
            g.all_reduce(&mut v)?;
            sums.push(v[0]);
        }
        Ok::<_, collectives::CommError>(sums)
    });
    for res in results {
        assert_eq!(res.expect("fault-free adaptive run"), vec![3.0; 4]);
    }
    // Every completed op fed an observed sample back to the controller.
    assert!(
        controller.p99_us(obs::names::SPAN_ALL_REDUCE).is_some(),
        "completions must be observed"
    );
    // With samples in hand, the budget has tightened off the ceiling
    // (micro-second ops clamp to the floor).
    let b = controller.budget(obs::names::SPAN_ALL_REDUCE, 12);
    assert!(
        b < config().ceiling,
        "learned budget {b:?} should leave the ceiling"
    );
}

#[test]
fn browned_out_world_still_completes_under_adaptive_deadlines() {
    // The controller's whole point: a limping rank widens p99 (and so
    // the budget) instead of tripping timeouts — detection is the
    // health monitor's job, not the deadline's.
    let _doctor = parking_lot::lock_doctor::check_guard();
    let controller = DeadlineController::shared(DeadlineConfig {
        floor: Duration::from_millis(50),
        ceiling: Duration::from_secs(2),
        slack: 4.0,
        window: 16,
    });
    let spec = Brownout::steady(Duration::from_millis(10));
    let world = CommWorld::new(3)
        .with_adaptive_deadlines(Arc::clone(&controller))
        .with_faults(FaultInjector::new().brownout(2, spec, 7));
    let results = run_world_within(world, BUDGET, |comm| {
        let g = comm.world_group();
        for _ in 0..6 {
            let mut v = vec![1.0f32; 3];
            g.all_reduce(&mut v)?;
        }
        Ok::<_, collectives::CommError>(())
    });
    for (rank, res) in results.iter().enumerate() {
        assert!(res.is_ok(), "rank {rank} must limp through: {res:?}");
    }
    let p99 = controller
        .p99_us(obs::names::SPAN_ALL_REDUCE)
        .expect("ops were observed");
    assert!(
        p99 >= 8_000,
        "p99 ({p99} µs) must reflect the ~10 ms brownout"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SPMD determinism: two controllers given identical fits and
    /// identical observed samples derive bit-identical budgets for any
    /// op/payload — the property that guarantees no rank times out
    /// while a peer keeps waiting.
    #[test]
    fn budgets_are_spmd_identical_across_ranks(
        alpha in 0.0f64..50.0,
        beta in 0.0f64..0.01,
        samples in prop::collection::vec(1u64..500_000, 0..24),
        bytes in 0usize..(1 << 22),
    ) {
        let ranks: Vec<DeadlineController> =
            (0..4).map(|_| DeadlineController::new(config())).collect();
        for ctl in &ranks {
            ctl.set_fit("all_to_all", alpha, beta);
            for &us in &samples {
                ctl.observe("all_to_all", Duration::from_micros(us));
            }
        }
        let budgets: Vec<Duration> =
            ranks.iter().map(|c| c.budget("all_to_all", bytes)).collect();
        for b in &budgets[1..] {
            prop_assert_eq!(*b, budgets[0], "ranks disagree on the budget");
        }
        prop_assert!(budgets[0] >= config().floor);
        prop_assert!(budgets[0] <= config().ceiling);
    }
}
