//! Fault-injection and deadline tests: killed ranks, stragglers, payload
//! drops, poisoning, and dead-rank declaration. The acceptance bar: a
//! rank killed mid-AlltoAll must leave every surviving rank with a
//! *typed error* within the deadline — never a hang.

use std::time::{Duration, Instant};

use collectives::{run_world, run_world_within, CommError, CommWorld, FaultAction, FaultInjector};

const DEADLINE: Duration = Duration::from_millis(500);
/// Watchdog budget: generous, but far below "hang forever".
const BUDGET: Duration = Duration::from_secs(10);

#[test]
fn kill_mid_all_to_all_errors_all_survivors_within_deadline() {
    let _doctor = parking_lot::lock_doctor::check_guard();
    let world = CommWorld::new(4)
        .with_deadline(DEADLINE)
        .with_faults(FaultInjector::new().kill(2, 0));
    let start = Instant::now();
    let results = run_world_within(world, BUDGET, |comm| {
        let g = comm.world_group();
        let data = vec![comm.rank() as f32; 4];
        g.all_to_all(&data)
    });
    // No rank may take longer than the deadline plus scheduling slack.
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "survivors took {:?}",
        start.elapsed()
    );
    for (rank, res) in results.iter().enumerate() {
        let err = res.as_ref().expect_err("every rank must observe the fault");
        match err {
            CommError::RankDown { rank: dead } => assert_eq!(*dead, 2),
            CommError::Timeout {
                op,
                waiting_on,
                deadline,
                elapsed,
            } => {
                assert_eq!(*op, obs::names::SPAN_ALL_TO_ALL);
                assert!(waiting_on.contains(&2), "rank {rank}: {waiting_on:?}");
                assert_eq!(*deadline, DEADLINE, "the configured budget is reported");
                assert!(
                    elapsed >= deadline,
                    "rank {rank}: gave up after {elapsed:?} < deadline {deadline:?}"
                );
            }
            other => panic!("rank {rank}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn killed_rank_stays_dead_for_later_collectives() {
    let _doctor = parking_lot::lock_doctor::check_guard();
    let world = CommWorld::new(2)
        .with_deadline(DEADLINE)
        .with_faults(FaultInjector::new().kill(1, 0));
    let results = run_world_within(world, BUDGET, |comm| {
        let g = comm.world_group();
        let first = g.barrier();
        let second = g.barrier();
        (first, second)
    });
    // Rank 1 dies at op 0 and every later call fails the same way.
    assert_eq!(results[1].0, Err(CommError::RankDown { rank: 1 }));
    assert_eq!(results[1].1, Err(CommError::RankDown { rank: 1 }));
    // Rank 0 observes the death on both ops (RankDown fast path or
    // Timeout if it raced ahead of the kill).
    for res in [&results[0].0, &results[0].1] {
        assert!(res.is_err(), "rank 0 must not complete: {res:?}");
    }
}

#[test]
fn straggler_within_deadline_still_completes() {
    let _doctor = parking_lot::lock_doctor::check_guard();
    let world = CommWorld::new(3)
        .with_deadline(Duration::from_secs(5))
        .with_faults(FaultInjector::new().delay(1, 0, Duration::from_millis(50)));
    let results = run_world_within(world, BUDGET, |comm| {
        let g = comm.world_group();
        let mut v = vec![comm.rank() as f32];
        g.all_reduce(&mut v).map(|()| v[0])
    });
    for res in results {
        assert_eq!(res, Ok(3.0));
    }
}

#[test]
fn straggler_beyond_deadline_times_out_peers() {
    let _doctor = parking_lot::lock_doctor::check_guard();
    let world = CommWorld::new(2)
        .with_deadline(Duration::from_millis(100))
        .with_faults(FaultInjector::new().delay(1, 0, Duration::from_millis(400)));
    let results = run_world_within(world, BUDGET, |comm| {
        let g = comm.world_group();
        g.barrier()
    });
    // Rank 0 gives up on the straggler; the straggler, arriving to an
    // abandoned rendezvous, times out too. Nobody hangs.
    match &results[0] {
        Err(CommError::Timeout {
            op,
            waiting_on,
            deadline,
            elapsed,
        }) => {
            assert_eq!(*op, "barrier");
            assert_eq!(*waiting_on, vec![1]);
            assert_eq!(*deadline, Duration::from_millis(100));
            assert!(elapsed >= deadline, "{elapsed:?} < {deadline:?}");
        }
        other => panic!("rank 0 must time out, got {other:?}"),
    }
    assert!(results[1].is_err());
}

#[test]
fn timed_out_op_can_be_retried_with_same_payload() {
    let _doctor = parking_lot::lock_doctor::check_guard();
    // Retry semantics the fsmoe layer relies on: a rank that times out
    // withdraws its deposit and re-enters with the *same* payload; a
    // straggling peer that finally arrives joins the retry and the op
    // completes with a consistent result on both sides.
    let world = CommWorld::new(2)
        .with_deadline(Duration::from_millis(150))
        .with_faults(FaultInjector::new().delay(1, 0, Duration::from_millis(300)));
    let results = run_world_within(world, BUDGET, |comm| {
        let g = comm.world_group();
        let base = vec![comm.rank() as f32 + 1.0];
        let mut attempts = 0;
        loop {
            let mut v = base.clone();
            match g.all_reduce(&mut v) {
                Ok(()) => return (attempts, v[0]),
                Err(CommError::Timeout { .. }) if attempts < 10 => attempts += 1,
                Err(e) => panic!("unexpected error: {e:?}"),
            }
        }
    });
    for (rank, (_, sum)) in results.iter().enumerate() {
        assert_eq!(*sum, 3.0, "rank {rank} retry produced wrong sum");
    }
}

#[test]
fn abandoned_op_fails_typed_instead_of_crosswiring() {
    let _doctor = parking_lot::lock_doctor::check_guard();
    // Rank 1 straggles past rank 0's patience on op A (an AlltoAll);
    // rank 0 gives up, skips the op, and issues its *next* collective B
    // on the same group. Without op-stream ids, rank 1's late deposit
    // for A would rendezvous with rank 0's B deposit — both tagged
    // AllToAll-family — and both ranks would silently compute over mixed
    // payloads. With ids, rank 1 gets `Abandoned`, skips A itself, and
    // joins B for a correct exchange.
    let world = CommWorld::new(2)
        .with_deadline(Duration::from_millis(100))
        .with_faults(FaultInjector::new().delay(1, 0, Duration::from_millis(500)));
    let results = run_world_within(world, BUDGET, |comm| {
        let g = comm.world_group();
        if comm.rank() == 0 {
            // Op A: one attempt, then abandon and move on.
            let a = g.all_to_all(&[0.0, 1.0]);
            assert!(matches!(a, Err(CommError::Timeout { .. })), "{a:?}");
            g.skip_op();
            assert_eq!(g.op_stream_position(), 1);
            // Op B: retry until the straggler catches up and joins.
            let mut attempts = 0;
            loop {
                let mut b = vec![1.0f32];
                match g.all_reduce(&mut b) {
                    Ok(()) => break Ok(b[0]),
                    Err(CommError::Timeout { .. }) if attempts < 50 => attempts += 1,
                    Err(e) => break Err(e),
                }
            }
        } else {
            // Wakes long after rank 0 abandoned op A and claimed op B.
            let a = g.all_to_all(&[2.0, 3.0]);
            match a {
                Err(CommError::Abandoned {
                    op,
                    op_id,
                    stream_id,
                }) => {
                    assert_eq!(op, obs::names::SPAN_ALL_TO_ALL);
                    assert!(stream_id > op_id, "stream {stream_id} vs op {op_id}");
                }
                other => panic!("expected Abandoned, got {other:?}"),
            }
            g.skip_op();
            let mut b = vec![2.0f32];
            g.all_reduce(&mut b).map(|()| b[0])
        }
    });
    // Op B completed consistently on both sides: 1 + 2.
    assert_eq!(results[0], Ok(3.0));
    assert_eq!(results[1], Ok(3.0));
}

#[test]
fn payload_drop_zeroes_contribution() {
    let _doctor = parking_lot::lock_doctor::check_guard();
    let world = CommWorld::new(2).with_faults(FaultInjector::new().drop_payload(1, 0));
    let results = run_world(world, |comm| {
        let g = comm.world_group();
        let mut v = vec![comm.rank() as f32 + 1.0, comm.rank() as f32 + 1.0];
        g.all_reduce(&mut v).unwrap();
        v
    });
    // Rank 1's [2,2] was zero-filled: the sum is rank 0's [1,1] alone.
    for r in results {
        assert_eq!(r, vec![1.0, 1.0]);
    }
}

#[test]
fn panicking_rank_poisons_group_for_peers() {
    let _doctor = parking_lot::lock_doctor::check_guard();
    let world = CommWorld::new(2).with_deadline(DEADLINE);
    let comms = world.into_communicators();
    let mut comms = comms.into_iter();
    let c0 = comms.next().unwrap();
    let c1 = comms.next().unwrap();

    let t1 = std::thread::spawn(move || {
        let g = c1.world_group();
        // Arrive last (the last arrival runs the reduction) with a
        // mismatched buffer length, so this thread panics mid-collective
        // while rank 0 is already committed to the rendezvous.
        std::thread::sleep(Duration::from_millis(100));
        let mut v = vec![1.0f32, 2.0];
        let _ = g.all_reduce(&mut v);
    });
    let t0 = std::thread::spawn(move || {
        let g = c0.world_group();
        let mut v = vec![1.0f32];
        g.all_reduce(&mut v)
    });

    assert!(t1.join().is_err(), "rank 1 must panic (length mismatch)");
    let r0 = t0.join().unwrap();
    match r0 {
        Err(CommError::Poisoned { .. }) | Err(CommError::Timeout { .. }) => {}
        other => panic!("rank 0 should observe poisoning or timeout, got {other:?}"),
    }
}

#[test]
fn declare_dead_fails_in_flight_collective() {
    let _doctor = parking_lot::lock_doctor::check_guard();
    let world = CommWorld::new(2).with_deadline(Duration::from_secs(5));
    let comms = world.into_communicators();
    let observer = comms[0].clone();
    let mut comms = comms.into_iter();
    let c0 = comms.next().unwrap();
    let _c1 = comms.next().unwrap(); // never joins — it is "crashed"

    let t0 = std::thread::spawn(move || {
        let g = c0.world_group();
        g.barrier()
    });
    std::thread::sleep(Duration::from_millis(50));
    // A failure detector (here: the test) declares rank 1 dead.
    observer.declare_dead(1);
    let res = t0.join().unwrap();
    assert_eq!(res, Err(CommError::RankDown { rank: 1 }));
}

#[test]
fn fault_action_is_inspectable() {
    let _doctor = parking_lot::lock_doctor::check_guard();
    let inj = FaultInjector::new()
        .kill(0, 1)
        .delay(1, 2, Duration::from_millis(5))
        .drop_payload(2, 3);
    let mut events = inj.events();
    events.sort_by_key(|&(r, o, _)| (r, o));
    assert_eq!(
        events,
        vec![
            (0, 1, FaultAction::Kill),
            (1, 2, FaultAction::Delay(Duration::from_millis(5))),
            (2, 3, FaultAction::DropPayload),
        ]
    );
}
