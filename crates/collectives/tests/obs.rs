//! Observability regression tests for the collective runtime.
//!
//! The withdraw/retry path must not distort the trace: a retried-then-
//! successful op records **exactly one** success span per rank, with
//! every failed attempt showing up as counters (`collectives.retries`,
//! `collectives.timeouts`) instead of phantom spans.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use collectives::{run_world, CommError, CommWorld, FaultInjector};

#[test]
fn retried_op_records_one_span_and_counts_each_retry() {
    let session = obs::session();

    let straggle = Duration::from_millis(250);
    let retries_seen = Arc::new(AtomicUsize::new(0));
    let retries_in_loop = Arc::clone(&retries_seen);
    let world = CommWorld::new(2).with_deadline(Duration::from_millis(50));
    run_world(world, move |comm| {
        let mut group = comm.world_group();
        if comm.rank() == 1 {
            // The straggler: arrive late, but allow a generous deadline
            // so its own (single) attempt cannot time out while rank 0
            // is between retries.
            std::thread::sleep(straggle);
            group.set_deadline(Some(Duration::from_secs(5)));
            let mut x = vec![1.0f32];
            group.all_reduce(&mut x).unwrap();
            return;
        }
        let mut attempts = 0usize;
        loop {
            let mut x = vec![1.0f32];
            match group.all_reduce(&mut x) {
                Ok(()) => break,
                Err(CommError::Timeout { .. }) => attempts += 1,
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        retries_in_loop.store(attempts, Ordering::SeqCst);
    });

    let failed_attempts = retries_seen.load(Ordering::SeqCst);
    assert!(
        failed_attempts >= 1,
        "a 250 ms straggle against a 50 ms deadline must force at least one retry"
    );

    let snap = session.snapshot();
    let spans = snap.spans_named(obs::names::SPAN_ALL_REDUCE);
    assert_eq!(
        spans.len(),
        2,
        "exactly one success span per rank — no phantom spans from withdrawn attempts"
    );
    for span in &spans {
        assert!(
            span.attrs.iter().any(|(k, v)| *k == "op_id" && v == "0"),
            "both success spans belong to op 0: {:?}",
            span.attrs
        );
        assert!(
            span.attrs.iter().any(|(k, v)| *k == "bytes" && v == "4"),
            "payload size recorded: {:?}",
            span.attrs
        );
    }
    assert_eq!(
        snap.counter(obs::names::COLLECTIVES_RETRIES),
        failed_attempts as u64,
        "every re-attempt of the same op-stream position counts once"
    );
    assert_eq!(
        snap.counter(obs::names::COLLECTIVES_TIMEOUTS),
        failed_attempts as u64,
        "every failed attempt shows up as a timeout"
    );
    // both rank threads were named for the trace
    let names: Vec<&str> = snap.threads.values().map(String::as_str).collect();
    assert!(
        names.contains(&"rank 0") && names.contains(&"rank 1"),
        "{names:?}"
    );
}

#[test]
fn injected_kill_counts_fault_and_rank_down_without_a_span() {
    let session = obs::session();

    let world = CommWorld::new(2)
        .with_deadline(Duration::from_millis(200))
        .with_faults(FaultInjector::new().kill(1, 0));
    run_world(world, |comm| {
        let group = comm.world_group();
        let mut x = vec![comm.rank() as f32];
        // Rank 1 dies on entry; rank 0 observes the dead peer. Neither
        // completes, so neither records a span.
        let _ = group.all_reduce(&mut x);
    });

    let snap = session.snapshot();
    assert!(
        snap.spans_named(obs::names::SPAN_ALL_REDUCE).is_empty(),
        "no success, no span"
    );
    assert_eq!(snap.counter(obs::names::COLLECTIVES_FAULTS_INJECTED), 1);
    assert_eq!(
        snap.counter(obs::names::COLLECTIVES_RANK_DOWN),
        2,
        "the killed rank and the surviving peer each fail with RankDown"
    );
}

#[test]
fn skip_op_is_counted() {
    let session = obs::session();
    let world = CommWorld::new(1);
    run_world(world, |comm| {
        comm.world_group().skip_op();
    });
    assert_eq!(
        session
            .snapshot()
            .counter(obs::names::COLLECTIVES_SKIPPED_OPS),
        1
    );
}
