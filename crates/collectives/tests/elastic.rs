//! Elastic-membership protocol tests: eviction agreement, epoch
//! fencing, contiguous re-numbering, fresh op streams, and the typed
//! failure modes of the vote itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use collectives::{run_world_within, CommError, CommWorld, Communicator};

const BUDGET: Duration = Duration::from_secs(30);

fn world(size: usize) -> CommWorld {
    CommWorld::new(size).with_deadline(Duration::from_secs(5))
}

/// The survivors' shared path: evict `victim`, rebind, and return the
/// new communicator.
fn evict_and_rebind(comm: &Communicator, victim: usize) -> Communicator {
    let epoch = comm.propose_evict(victim).expect("vote completes");
    assert_eq!(epoch, comm.membership_epoch());
    comm.reconfigured().expect("survivor rebinds")
}

#[test]
fn eviction_renumbers_survivors_and_bumps_epoch() {
    let results = run_world_within(world(4), BUDGET, |comm| {
        if comm.rank() == 2 {
            comm.declare_dead(comm.rank());
            return None;
        }
        let new_comm = evict_and_rebind(&comm, 2);
        // survivors [0, 1, 3] renumber to contiguous [0, 1, 2]
        assert_eq!(new_comm.world_size(), 3);
        let expected_new = match comm.rank() {
            0 => 0,
            1 => 1,
            3 => 2,
            _ => unreachable!(),
        };
        assert_eq!(new_comm.rank(), expected_new);
        let (epoch, survivors) = comm.last_reconfiguration().expect("published");
        assert_eq!(epoch, 1);
        assert_eq!(survivors, vec![0, 1, 3]);
        // The new world works: all_reduce over the shrunken group.
        let mut x = vec![new_comm.rank() as f32];
        new_comm.world_group().all_reduce(&mut x).unwrap();
        assert_eq!(x[0], 3.0); // 0 + 1 + 2
        Some((comm.membership_epoch(), new_comm.membership_epoch()))
    });
    for (rank, r) in results.iter().enumerate() {
        if rank == 2 {
            assert!(r.is_none());
        } else {
            assert_eq!(*r, Some((1, 1)), "epoch carries into the new world");
        }
    }
}

#[test]
fn fenced_world_fails_ops_with_reconfigured() {
    let results = run_world_within(world(3), BUDGET, |comm| {
        if comm.rank() == 2 {
            comm.declare_dead(comm.rank());
            return None;
        }
        let _ = evict_and_rebind(&comm, 2);
        // Any collective on the *old* world now fails cleanly.
        let err = comm.world_group().barrier().unwrap_err();
        Some(err)
    });
    for r in results.into_iter().flatten() {
        assert_eq!(r, CommError::Reconfigured { epoch: 1 });
    }
}

#[test]
fn in_flight_op_is_fenced_mid_wait() {
    // A deadline-less barrier deposit is already waiting on the old
    // world when the fence lands (the depositor's vote arrives from a
    // second handle of the same rank); the rendezvous wait loop must
    // observe the fence, withdraw the deposit, and fail with
    // Reconfigured instead of blocking forever.
    let comms = CommWorld::new(3).into_communicators();
    let c0_wait = comms[0].clone();
    let c0_vote = comms[0].clone();
    let c1 = comms[1].clone();
    comms[2].declare_dead(2);
    let waiter = std::thread::spawn(move || {
        let g = c0_wait.subgroup(&[0, 1]).unwrap();
        g.barrier().unwrap_err()
    });
    std::thread::sleep(Duration::from_millis(100));
    let voter0 = std::thread::spawn(move || c0_vote.propose_evict(2).unwrap());
    let voter1 = std::thread::spawn(move || c1.propose_evict(2).unwrap());
    assert_eq!(voter0.join().unwrap(), 1);
    assert_eq!(voter1.join().unwrap(), 1);
    let err = waiter.join().unwrap();
    assert!(
        matches!(err, CommError::Reconfigured { epoch: 1 }),
        "{err:?}"
    );
}

#[test]
fn vote_failure_modes_are_typed() {
    let comms = CommWorld::new(4).into_communicators();
    // out-of-range victim
    assert!(matches!(
        comms[0].propose_evict(9),
        Err(CommError::RankOutOfRange { rank: 9, .. })
    ));
    // self-eviction
    assert!(matches!(
        comms[1].propose_evict(1),
        Err(CommError::InvalidGroup { .. })
    ));
    // a dead caller cannot vote
    comms[0].declare_dead(0);
    assert!(matches!(
        comms[0].propose_evict(2),
        Err(CommError::RankDown { rank: 0 })
    ));
    // no reconfiguration published yet
    assert!(comms[1].reconfigured().is_err());
    assert!(comms[1].last_reconfiguration().is_none());
}

#[test]
fn conflicting_proposals_get_evict_conflict() {
    let results = run_world_within(
        CommWorld::new(4).with_deadline(Duration::from_millis(300)),
        BUDGET,
        |comm| match comm.rank() {
            0 => {
                // First proposer: victim 2. The vote can never complete
                // (rank 1 errors out, rank 3 never votes), so the
                // deadline fires.
                let err = comm.propose_evict(2).unwrap_err();
                matches!(err, CommError::Timeout { .. })
            }
            1 => {
                std::thread::sleep(Duration::from_millis(100));
                let err = comm.propose_evict(3).unwrap_err();
                err == CommError::EvictConflict {
                    proposed: 3,
                    agreed: 2,
                }
            }
            _ => {
                std::thread::sleep(Duration::from_millis(500));
                true
            }
        },
    );
    assert_eq!(results, vec![true, true, true, true]);
}

#[test]
fn duplicate_proposal_is_idempotent() {
    let results = run_world_within(world(3), BUDGET, |comm| {
        if comm.rank() == 2 {
            comm.declare_dead(comm.rank());
            return None;
        }
        let first = comm.propose_evict(2).unwrap();
        let second = comm.propose_evict(2).unwrap();
        Some((first, second))
    });
    for r in results.into_iter().flatten() {
        assert_eq!(r, (1, 1));
    }
}

#[test]
fn victim_cannot_rebind() {
    let results = run_world_within(world(3), BUDGET, |comm| {
        if comm.rank() == 1 {
            comm.declare_dead(comm.rank());
            // Wait for the survivors' vote to complete, then try to
            // rebind anyway.
            for _ in 0..100 {
                if comm.last_reconfiguration().is_some() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            return Some(matches!(
                comm.reconfigured(),
                Err(CommError::RankDown { rank: 1 })
            ));
        }
        let _ = evict_and_rebind(&comm, 1);
        None
    });
    assert_eq!(results[1], Some(true));
}

#[test]
fn cascaded_evictions_keep_epoch_monotone() {
    let results = run_world_within(world(3), BUDGET, |comm| {
        if comm.rank() == 2 {
            comm.declare_dead(comm.rank());
            return None;
        }
        let second = evict_and_rebind(&comm, 2);
        assert_eq!(second.membership_epoch(), 1);
        if comm.rank() == 1 {
            // New rank 1 (old rank 1) dies in the second generation.
            second.declare_dead(second.rank());
            return Some(1);
        }
        // Old rank 0 == new rank 0 evicts new rank 1.
        let third = evict_and_rebind(&second, 1);
        assert_eq!(third.world_size(), 1);
        assert_eq!(third.membership_epoch(), 2);
        // A one-rank world still runs collectives.
        let mut x = vec![41.0f32];
        third.world_group().all_reduce(&mut x).unwrap();
        assert_eq!(x[0], 41.0);
        Some(2)
    });
    assert_eq!(results, vec![Some(2), Some(1), None]);
}

#[test]
fn op_streams_start_fresh_after_reconfiguration() {
    let results = run_world_within(world(3), BUDGET, |comm| {
        if comm.rank() == 2 {
            comm.declare_dead(comm.rank());
            return None;
        }
        // Advance the old world's op stream on the surviving pair.
        let old_pair = comm.subgroup(&[0, 1]).unwrap();
        old_pair.barrier().unwrap();
        old_pair.barrier().unwrap();
        assert_eq!(old_pair.op_stream_position(), 2);
        let new_comm = evict_and_rebind(&comm, 2);
        let new_pair = new_comm.subgroup(&[0, 1]).unwrap();
        assert_eq!(
            new_pair.op_stream_position(),
            0,
            "reconfigured worlds flush op streams"
        );
        new_pair.barrier().unwrap();
        Some(new_pair.op_stream_position())
    });
    assert_eq!(results, vec![Some(1), Some(1), None]);
}

#[test]
fn eviction_is_counted_and_epoch_gauged() {
    let session = obs::session();
    let evictions = Arc::new(AtomicU64::new(0));
    let ev = Arc::clone(&evictions);
    run_world_within(world(4), BUDGET, move |comm| {
        if comm.rank() == 3 {
            comm.declare_dead(comm.rank());
            return;
        }
        let _ = evict_and_rebind(&comm, 3);
        ev.fetch_add(1, Ordering::Relaxed);
    });
    let snap = session.snapshot();
    assert_eq!(
        snap.counter(obs::names::COLLECTIVES_EVICTIONS),
        1,
        "one agreed eviction counts once, not once per voter"
    );
    assert_eq!(
        snap.gauges.get(obs::names::COLLECTIVES_MEMBERSHIP_EPOCH),
        Some(&1.0)
    );
    assert_eq!(evictions.load(Ordering::Relaxed), 3);
}
