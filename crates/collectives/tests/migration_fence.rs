//! Migration-fence protocol tests: world-wide quiescing on a shared
//! `(expert, from, to)` key, generation bumps on completion, atomic
//! withdrawal on conflict, and the typed losses — a disagreeing fence
//! or a concurrent eviction always kills the migration, never the
//! eviction.

use std::time::Duration;

use collectives::{run_world_within, CommError, CommWorld};

const BUDGET: Duration = Duration::from_secs(30);

fn world(size: usize) -> CommWorld {
    CommWorld::new(size).with_deadline(Duration::from_secs(5))
}

#[test]
fn agreeing_fences_complete_and_bump_the_generation() {
    let results = run_world_within(world(4), BUDGET, |comm| {
        assert_eq!(comm.migration_generation(), 0);
        let g1 = comm.migration_fence(3, 1, 2).expect("first fence");
        let g2 = comm.migration_fence(5, 0, 3).expect("second fence");
        (g1, g2, comm.migration_generation())
    });
    for (rank, &(g1, g2, after)) in results.iter().enumerate() {
        assert_eq!(g1, 1, "rank {rank}");
        assert_eq!(g2, 2, "rank {rank}: fences are reusable back-to-back");
        assert_eq!(after, 2, "rank {rank}");
    }
}

#[test]
fn disagreeing_keys_conflict_and_leave_the_fence_reusable() {
    let results = run_world_within(world(2), BUDGET, |comm| {
        if comm.rank() == 0 {
            // Installs the key (expert 1, 0 -> 1) first and waits.
            (None, comm.migration_fence(1, 0, 1))
        } else {
            // Joins late with a different key: the typed conflict names
            // the fence that won, not ours.
            std::thread::sleep(Duration::from_millis(100));
            let lost = comm.migration_fence(0, 1, 0);
            assert!(
                matches!(
                    lost,
                    Err(CommError::MigrationConflict {
                        expert: 1,
                        from: 0,
                        to: 1
                    })
                ),
                "got {lost:?}"
            );
            // Losing is side-effect free: agreeing with the held key
            // joins the pending fence and completes it for both ranks.
            (lost.err(), comm.migration_fence(1, 0, 1))
        }
    });
    assert!(results[0].0.is_none());
    assert!(results[1].0.is_some(), "rank 1 must lose the key race");
    for (rank, (_, fence)) in results.iter().enumerate() {
        assert_eq!(
            *fence.as_ref().expect("agreed fence completes"),
            1,
            "rank {rank}"
        );
    }
}

#[test]
fn fence_validates_its_endpoints() {
    let results = run_world_within(world(2), BUDGET, |comm| {
        (comm.migration_fence(0, 0, 5), comm.migration_fence(0, 1, 1))
    });
    for (out_of_range, self_move) in results {
        assert!(matches!(
            out_of_range,
            Err(CommError::RankOutOfRange { .. })
        ));
        assert!(matches!(self_move, Err(CommError::InvalidGroup { .. })));
    }
}

#[test]
fn pending_eviction_beats_the_fence() {
    let results = run_world_within(world(3), BUDGET, |comm| {
        if comm.rank() == 2 {
            comm.declare_dead(comm.rank());
            return None;
        }
        // The dead peer makes any fence touching it — and, once the
        // eviction vote is in flight, any fence at all — lose.
        let dead_endpoint = comm.migration_fence(0, 1, 2);
        assert!(
            matches!(dead_endpoint, Err(CommError::RankDown { rank: 2 })),
            "got {dead_endpoint:?}"
        );
        let epoch = match comm.propose_evict(2) {
            Ok(e) => e,
            Err(CommError::Reconfigured { epoch }) => epoch,
            Err(e) => panic!("vote failed: {e}"),
        };
        assert_eq!(epoch, 1);
        // The old world is fenced by the eviction: migrations on it are
        // permanently lost, with a typed error.
        let after_evict = comm.migration_fence(0, 0, 1);
        Some(matches!(
            after_evict,
            Err(CommError::MigrationConflict { .. }) | Err(CommError::Reconfigured { .. })
        ))
    });
    for (rank, r) in results.iter().enumerate() {
        if rank == 2 {
            assert!(r.is_none());
        } else {
            assert_eq!(*r, Some(true), "rank {rank}");
        }
    }
}

#[test]
fn lone_joiner_times_out_and_withdraws() {
    let results = run_world_within(
        CommWorld::new(2).with_deadline(Duration::from_millis(80)),
        BUDGET,
        |comm| {
            if comm.rank() == 1 {
                // Never joins the first fence; the partner must time
                // out rather than hang.
                std::thread::sleep(Duration::from_millis(200));
                return comm.migration_fence(1, 0, 1).err().map(|e| format!("{e}"));
            }
            let lone = comm.migration_fence(1, 0, 1);
            assert!(
                matches!(lone, Err(CommError::Timeout { .. })),
                "got {lone:?}"
            );
            // The withdrawal cleared the key: rank 1's late fence finds
            // an empty slot, not our stale one — and *its* lone wait
            // also times out, proving the state fully reset.
            None
        },
    );
    let late = results[1].as_ref().expect("late fence must also fail");
    assert!(
        late.contains("timed out") || late.contains("deadline"),
        "{late}"
    );
}
