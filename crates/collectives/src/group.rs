//! Group communicators and the collective state machine.
//!
//! The rendezvous here is *fault-aware*: every wait is bounded by the
//! group's deadline (when armed), dead ranks (killed by fault injection
//! or declared dead) fail the collective with [`CommError::RankDown`]
//! instead of hanging every peer, and a rank that panics mid-collective
//! poisons the group so peers get [`CommError::Poisoned`] immediately.
//!
//! It is also *sequence-aware*: each rank carries a monotonic per-group
//! op id (advanced on completion, or explicitly by
//! [`GroupComm::skip_op`] when a caller abandons an exchange), and every
//! rendezvous round is stamped with the id it belongs to. Deposits from
//! different logical collectives therefore can never mix — a straggler
//! arriving behind the stream gets [`CommError::Abandoned`] instead of
//! cross-wiring its stale payload into a peer's *next* collective.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::fault::FaultAction;
use crate::world::WorldCtrl;
use crate::{CommError, Result};

/// How often waiting ranks re-check world fault state (dead ranks,
/// poisoning, membership fences) even without a notification. Bounds the
/// detection latency for ranks blocked on *other* groups than the one a
/// fault hit.
// lint: allow(deadline-literals) — poll cadence for fault re-checks, not an op budget
pub(crate) const FAULT_POLL: Duration = Duration::from_millis(25);

/// Which collective the group is currently executing, used to detect SPMD
/// violations (two ranks calling different collectives on one group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpTag {
    AllReduce,
    AllGather,
    ReduceScatter,
    AllToAll,
    Broadcast,
    Barrier,
}

impl OpTag {
    fn name(self) -> &'static str {
        match self {
            OpTag::AllReduce => obs::names::SPAN_ALL_REDUCE,
            OpTag::AllGather => obs::names::SPAN_ALL_GATHER,
            OpTag::ReduceScatter => obs::names::SPAN_REDUCE_SCATTER,
            OpTag::AllToAll => obs::names::SPAN_ALL_TO_ALL,
            OpTag::Broadcast => obs::names::SPAN_BROADCAST,
            OpTag::Barrier => obs::names::SPAN_BARRIER,
        }
    }
}

#[derive(Debug)]
enum Phase {
    /// Ranks are depositing inputs; `usize` counts arrivals.
    Collecting(usize),
    /// Outputs are ready; members drain them (slot goes to `None`).
    Distributing,
}

#[derive(Debug)]
struct OpState {
    phase: Phase,
    tag: Option<OpTag>,
    /// Op id of the current (or most recently opened) round. Monotone:
    /// a round is only ever claimed by a rank whose op id is ≥ it.
    round_id: u64,
    inputs: Vec<Option<Vec<f32>>>,
    outputs: Vec<Option<Vec<f32>>>,
    /// Set when a member panicked mid-collective (or violated SPMD);
    /// permanent — the rendezvous state is indeterminate afterwards.
    poisoned: Option<usize>,
}

/// Process-global group-instance counter: every [`GroupInner`] gets a
/// unique id, shared by all ranks bound to it (the inner is one `Arc`).
/// Distinct groups over the *same* rank set (e.g. a dp group and the
/// world group on a 1-node layout) have independent op streams, so the
/// id is part of every op key — (ranks, epoch, op_id) alone would
/// collide across them.
static NEXT_GID: AtomicU64 = AtomicU64::new(1);

/// Shared state for one communication group.
#[derive(Debug)]
pub(crate) struct GroupInner {
    /// This group instance's process-unique id (see [`NEXT_GID`]).
    gid: u64,
    ranks: Vec<usize>,
    state: Mutex<OpState>,
    cond: Condvar,
    ctrl: Arc<WorldCtrl>,
    /// Per-member op-stream position (indexed by group index): how many
    /// logical collectives the member has completed or skipped. Lives in
    /// the shared inner so every handle a rank binds to the group sees
    /// one consistent stream.
    streams: Vec<AtomicU64>,
    /// Per-member marker of the last op-stream position *attempted*
    /// (stored as position + 1, so 0 means "never"). Re-attempting a
    /// position is what the `collectives.retries` counter measures.
    attempts: Vec<AtomicU64>,
}

impl GroupInner {
    pub(crate) fn new(ranks: Vec<usize>, ctrl: &Arc<WorldCtrl>) -> Self {
        let n = ranks.len();
        GroupInner {
            gid: NEXT_GID.fetch_add(1, Ordering::Relaxed),
            ranks,
            state: Mutex::new(OpState {
                phase: Phase::Collecting(0),
                tag: None,
                round_id: 0,
                inputs: vec![None; n],
                outputs: vec![None; n],
                poisoned: None,
            }),
            cond: Condvar::new(),
            ctrl: Arc::clone(ctrl),
            streams: (0..n).map(|_| AtomicU64::new(0)).collect(),
            attempts: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Wakes every waiter blocked on this group's condvar, so world-wide
    /// events (deaths, membership fences) are observed promptly.
    pub(crate) fn wake_all(&self) {
        self.cond.notify_all();
    }
}

/// Bumps the per-error-kind obs counter for a failed collective, and —
/// on the one unrecoverable kind, `Poisoned` (a peer panicked
/// mid-collective) — captures a flight-recorder post-mortem (no-op
/// unless `$FLIGHT_DUMP` is set). Shared by every error exit out of
/// [`GroupComm::run`], so early fault-gate failures count like
/// rendezvous failures.
fn record_error_counters(err: &CommError) {
    let counter = match err {
        CommError::Timeout { .. } => Some(obs::names::COLLECTIVES_TIMEOUTS),
        CommError::Abandoned { .. } => Some(obs::names::COLLECTIVES_ABANDONED),
        CommError::Poisoned { .. } => Some(obs::names::COLLECTIVES_POISONED),
        CommError::RankDown { .. } => Some(obs::names::COLLECTIVES_RANK_DOWN),
        _ => None,
    };
    if let Some(name) = counter {
        obs::counter_add(name, 1);
    }
    if matches!(err, CommError::Poisoned { .. }) {
        obs::flight::try_dump("poisoned");
    }
}

/// Poisons the group when the holder's thread unwinds mid-collective, so
/// peers error out instead of waiting forever. Declared before the state
/// guard, so during a panic the mutex is released first.
struct PoisonOnPanic<'a> {
    inner: &'a GroupInner,
    rank: usize,
}

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let mut st = self.inner.state.lock();
            if st.poisoned.is_none() {
                st.poisoned = Some(self.rank);
            }
            drop(st);
            self.inner.cond.notify_all();
        }
    }
}

/// A communicator bound to one rank's membership in one group.
///
/// All collectives block until every member of the group has joined the
/// call, exactly like their NCCL counterparts — except that an armed
/// deadline ([`GroupComm::set_deadline`], inherited from
/// [`crate::CommWorld::with_deadline`]) converts an absent peer into
/// [`CommError::Timeout`], and a peer known dead into
/// [`CommError::RankDown`]. The semantics follow the MPI/NCCL
/// definitions; see each method.
#[derive(Debug, Clone)]
pub struct GroupComm {
    inner: Arc<GroupInner>,
    /// This rank's index *within the group* (dense, 0-based).
    index: usize,
    /// This rank's global rank (for diagnostics).
    global_rank: usize,
    /// Per-collective deadline; `None` waits forever.
    deadline: Option<Duration>,
}

impl GroupComm {
    pub(crate) fn new(
        inner: Arc<GroupInner>,
        global_rank: usize,
        deadline: Option<Duration>,
    ) -> Result<Self> {
        let index = inner
            .ranks
            .iter()
            .position(|&r| r == global_rank)
            .ok_or(CommError::NotAMember { rank: global_rank })?;
        Ok(GroupComm {
            inner,
            index,
            global_rank,
            deadline,
        })
    }

    /// Number of ranks in the group.
    pub fn size(&self) -> usize {
        self.inner.ranks.len()
    }

    /// This rank's dense index within the group.
    pub fn group_index(&self) -> usize {
        self.index
    }

    /// This rank's global rank.
    pub fn global_rank(&self) -> usize {
        self.global_rank
    }

    /// The global ranks composing the group, in group-index order.
    pub fn ranks(&self) -> &[usize] {
        &self.inner.ranks
    }

    /// The collective deadline currently armed on this handle.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Arms (or disarms, with `None`) the per-collective deadline.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// Advances this rank's op stream past one logical collective
    /// *without* running it.
    ///
    /// Callers that give up on an exchange (e.g. the degradation path in
    /// `fsmoe::dist` after its retry budget) use this to declare the op
    /// abandoned: peers still trying to run it observe the advanced
    /// stream and fail fast with [`CommError::Abandoned`] instead of
    /// rendezvousing their stale deposit with this rank's *next*
    /// collective. Only call between collectives — never with a deposit
    /// outstanding (the collectives' error paths guarantee this by
    /// withdrawing before returning).
    pub fn skip_op(&self) {
        self.inner.streams[self.index].fetch_add(1, Ordering::Relaxed);
        obs::counter_add(obs::names::COLLECTIVES_SKIPPED_OPS, 1);
    }

    /// This rank's position in the group's op stream: how many logical
    /// collectives it has completed or skipped ([`GroupComm::skip_op`]).
    pub fn op_stream_position(&self) -> u64 {
        self.inner.streams[self.index].load(Ordering::Relaxed)
    }

    /// Blocks on the condvar for one bounded step (never longer than the
    /// remaining deadline or the fault-poll interval). The time actually
    /// spent blocked is accumulated into the world's per-rank
    /// blocked-wait counter — the raw signal behind
    /// [`crate::Communicator::blocked_wait_us`].
    fn wait_step(&self, st: &mut MutexGuard<'_, OpState>, deadline: Option<Instant>) {
        let dur = match deadline {
            Some(d) => d.saturating_duration_since(Instant::now()).min(FAULT_POLL),
            None => FAULT_POLL,
        };
        if dur.is_zero() {
            return; // caller re-checks and reports the timeout
        }
        let waited = Instant::now();
        let _ = self.inner.cond.wait_for(st, dur);
        self.inner
            .ctrl
            .add_blocked_wait(self.global_rank, waited.elapsed().as_micros() as u64);
    }

    /// First group member that is dead world-wide and has not deposited
    /// an input this round — the op can never complete.
    fn blocking_dead_member(&self, st: &OpState) -> Option<usize> {
        self.inner
            .ranks
            .iter()
            .enumerate()
            .find(|&(i, &r)| st.inputs[i].is_none() && self.inner.ctrl.is_dead(r))
            .map(|(_, &r)| r)
    }

    /// Removes this rank's deposit so an abandoned op leaves the group
    /// reusable (retries re-enter a clean Collecting state).
    fn withdraw(&self, st: &mut OpState) {
        if let Phase::Collecting(c) = &mut st.phase {
            if st.inputs[self.index].take().is_some() {
                *c -= 1;
            }
            if *c == 0 {
                st.tag = None;
            }
        }
    }

    /// Drops outputs owed to dead ranks and, if the drain is complete,
    /// resets the group for the next collective.
    fn settle_drain(&self, st: &mut OpState) {
        if !matches!(st.phase, Phase::Distributing) {
            return;
        }
        for (i, &r) in self.inner.ranks.iter().enumerate() {
            if self.inner.ctrl.is_dead(r) {
                st.outputs[i] = None;
            }
        }
        if st.outputs.iter().all(Option::is_none) {
            st.phase = Phase::Collecting(0);
            st.tag = None;
            self.inner.cond.notify_all();
        }
    }

    /// Global ranks the caller is still waiting on.
    fn waiting_on(&self, st: &OpState) -> Vec<usize> {
        match st.phase {
            Phase::Collecting(_) => self
                .inner
                .ranks
                .iter()
                .enumerate()
                .filter(|&(i, _)| st.inputs[i].is_none() && i != self.index)
                .map(|(_, &r)| r)
                .collect(),
            Phase::Distributing => self
                .inner
                .ranks
                .iter()
                .enumerate()
                .filter(|&(i, _)| st.outputs[i].is_some())
                .map(|(_, &r)| r)
                .collect(),
        }
    }

    /// [`GroupComm::run_inner`] wrapped in fault injection and
    /// observability: exactly one success span per completed op (error
    /// and withdraw/retry paths record *no* span), stamped with the op's
    /// world-wide key ([`obs::names::op_key`]) so `obs::attrib` can
    /// stitch per-rank timelines; a `collectives.retries` increment
    /// whenever an op-stream position is attempted again; per-error-kind
    /// counters; and a flight-recorder dump on the one unrecoverable
    /// error (`Poisoned`).
    ///
    /// The injector consult lives *here*, before the span opens — an
    /// injected straggler delay is this rank arriving late, not wire
    /// time, so the span start must be the true arrival time. The
    /// preceding dead/fence gates replicate [`GroupComm::run_inner`]'s
    /// own (which it keeps — faults must never be consumed by a rank
    /// that could not have run the op anyway).
    fn run<F>(&self, tag: OpTag, mut input: Vec<f32>, compute: F) -> Result<Vec<f32>>
    where
        F: FnOnce(&[Vec<f32>]) -> Vec<Vec<f32>>,
    {
        if let Err(err) = self.fault_gates(&mut input) {
            record_error_counters(&err);
            return Err(err);
        }

        let pos = self.op_stream_position();
        let marker = self.inner.attempts[self.index].swap(pos + 1, Ordering::Relaxed);
        if marker == pos + 1 {
            obs::counter_add(obs::names::COLLECTIVES_RETRIES, 1);
        }
        let bytes = input.len() * std::mem::size_of::<f32>();
        // Adaptive budgets override the static deadline: the controller
        // sizes this op's budget to its name and payload. Timing starts
        // *after* the fault gates — an injected straggler delay is this
        // rank arriving late, and must not feed back into the budget as
        // wire time.
        let adaptive = self.inner.ctrl.adaptive().cloned();
        let budget = match &adaptive {
            Some(ctl) => Some(ctl.budget(tag.name(), bytes)),
            None => self.deadline,
        };
        let started = Instant::now();
        // Key epoch captured *before* the rendezvous: a live eviction can
        // bump the world epoch between this op's completion and the span
        // commit below, and a commit-time read would stamp the late-waking
        // rank's span with the new epoch — splitting one world-wide op
        // across two keys.
        let epoch = self.inner.ctrl.epoch();
        let span = obs::deferred_span(obs::names::CAT_COLLECTIVES, tag.name());
        match self.run_inner(tag, input, compute, budget) {
            Ok(out) => {
                if let Some(ctl) = &adaptive {
                    // Success-only: error paths measure the failure
                    // mode, not the op's cost, and would poison p99.
                    let elapsed = started.elapsed();
                    ctl.observe(tag.name(), elapsed);
                    if obs::is_enabled() {
                        let name = obs::names::deadline_budget_ms(tag.name());
                        obs::set_gauge(&name, budget.unwrap_or_default().as_secs_f64() * 1e3);
                    }
                }
                let mut span = span;
                if obs::is_enabled() {
                    span.attr("rank", self.global_rank);
                    span.attr("group", format_args!("{:?}", self.inner.ranks));
                    span.attr("op_id", pos);
                    span.attr("bytes", bytes);
                    span.attr(
                        "op_key",
                        obs::names::op_key(self.inner.gid, epoch, &self.inner.ranks, pos),
                    );
                }
                span.commit();
                Ok(out)
            }
            Err(err) => {
                span.cancel();
                record_error_counters(&err);
                Err(err)
            }
        }
    }

    /// The pre-rendezvous fault gates [`GroupComm::run`] applies before
    /// its collective span opens: dead-rank fail-fast, eviction fence,
    /// then the injector consult — exactly the order `run_inner` used to
    /// apply them, so faults are never consumed by a rank that could not
    /// have run the op anyway.
    fn fault_gates(&self, input: &mut [f32]) -> Result<()> {
        let ctrl = &self.inner.ctrl;
        if ctrl.is_dead(self.global_rank) {
            return Err(CommError::RankDown {
                rank: self.global_rank,
            });
        }
        if let Some(err) = ctrl.reconfig_error() {
            return Err(err);
        }
        if let Some(injector) = ctrl.injector() {
            let action = injector.on_collective(self.global_rank);
            if action.is_some() {
                obs::counter_add(obs::names::COLLECTIVES_FAULTS_INJECTED, 1);
            }
            match action {
                Some(FaultAction::Kill) => {
                    ctrl.mark_dead(self.global_rank);
                    self.inner.cond.notify_all();
                    return Err(CommError::RankDown {
                        rank: self.global_rank,
                    });
                }
                Some(FaultAction::Delay(d)) => std::thread::sleep(d),
                Some(FaultAction::DropPayload) => input.iter_mut().for_each(|v| *v = 0.0),
                None => {}
            }
        }
        Ok(())
    }

    /// The core rendezvous: deposit `input`, wait for all members, let the
    /// last arrival compute all outputs with `compute`, then take ours.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankDown`] when this rank or a peer is dead,
    /// [`CommError::Timeout`] when the armed deadline expires,
    /// [`CommError::Poisoned`] when a member panicked mid-collective, and
    /// [`CommError::Abandoned`] when peers have already skipped past this
    /// rank's op in the group's op stream.
    ///
    /// # Panics
    ///
    /// Panics when members concurrently issue different collectives on the
    /// same group (an SPMD violation); the group is poisoned first so
    /// peers error out rather than deadlock.
    fn run_inner<F>(
        &self,
        tag: OpTag,
        input: Vec<f32>,
        compute: F,
        budget: Option<Duration>,
    ) -> Result<Vec<f32>>
    where
        F: FnOnce(&[Vec<f32>]) -> Vec<Vec<f32>>,
    {
        let ctrl = &self.inner.ctrl;
        // Redundant with [`GroupComm::run`]'s gates, deliberately: the
        // checks are cheap, and keeping them here means no path into the
        // rendezvous can skip them.
        if ctrl.is_dead(self.global_rank) {
            return Err(CommError::RankDown {
                rank: self.global_rank,
            });
        }
        if let Some(err) = ctrl.reconfig_error() {
            // The world was fenced by a completed eviction: no collective
            // on it can ever complete again.
            return Err(err);
        }

        let op = tag.name();
        let started = Instant::now();
        let deadline = budget.map(|d| started + d);
        let expired = |deadline: Option<Instant>| deadline.is_some_and(|d| Instant::now() >= d);
        let n = self.size();
        let _poison_guard = PoisonOnPanic {
            inner: &self.inner,
            rank: self.global_rank,
        };
        let mut st = self.inner.state.lock();

        // Wait out the drain of a previous collective. Dead ranks never
        // take their outputs, so scrub them as we go.
        loop {
            if let Some(rank) = st.poisoned {
                return Err(CommError::Poisoned { rank });
            }
            if let Some(err) = ctrl.reconfig_error() {
                return Err(err);
            }
            self.settle_drain(&mut st);
            if matches!(st.phase, Phase::Collecting(_)) {
                break;
            }
            if expired(deadline) {
                let waiting_on = self.waiting_on(&st);
                return Err(CommError::Timeout {
                    op,
                    waiting_on,
                    deadline: budget.unwrap_or_default(),
                    elapsed: started.elapsed(),
                });
            }
            self.wait_step(&mut st, deadline);
        }

        // Op-stream check: deposits from different logical collectives
        // must never mix. Behind the round → peers provably abandoned
        // our op (the stream only advances) and no retry can succeed.
        // Ahead of the round → the open round belongs to an op *we*
        // already skipped; flush its stale deposits so their owners get
        // `Abandoned` instead of cross-wiring into our exchange.
        let my_id = self.inner.streams[self.index].load(Ordering::Relaxed);
        if my_id < st.round_id {
            return Err(CommError::Abandoned {
                op,
                op_id: my_id,
                stream_id: st.round_id,
            });
        }
        if my_id > st.round_id {
            if st.tag.is_some() {
                for slot in st.inputs.iter_mut() {
                    *slot = None;
                }
                st.phase = Phase::Collecting(0);
                st.tag = None;
                self.inner.cond.notify_all();
            }
            st.round_id = my_id;
        }

        debug_assert_eq!(st.round_id, my_id, "round claimed at the caller's op id");
        match st.tag {
            None => st.tag = Some(tag),
            Some(t) if t == tag => {}
            Some(t) => {
                st.poisoned = Some(self.global_rank);
                let ranks = self.inner.ranks.clone();
                drop(st);
                self.inner.cond.notify_all();
                panic!(
                    "SPMD violation on group {:?}: rank {} called {:?} while {:?} in flight",
                    ranks, self.global_rank, tag, t
                );
            }
        }

        st.inputs[self.index] = Some(input);
        let arrived = match &mut st.phase {
            Phase::Collecting(c) => {
                *c += 1;
                *c
            }
            Phase::Distributing => unreachable!("waited out distribution above"),
        };

        if arrived == n {
            let inputs: Vec<Vec<f32>> = st
                .inputs
                .iter_mut()
                // lint: allow(unwrap) — arrived == n holds here, and
                // every arrival deposits its input before incrementing.
                .map(|s| s.take().expect("all inputs deposited"))
                .collect();
            let outputs = compute(&inputs);
            assert_eq!(outputs.len(), n, "compute must yield one output per rank");
            for (slot, out) in st.outputs.iter_mut().zip(outputs) {
                *slot = Some(out);
            }
            st.phase = Phase::Distributing;
            self.inner.cond.notify_all();
        } else {
            loop {
                // A completed exchange always wins: once the op's compute
                // has run and our output is waiting, a fence or death
                // verdict observed afterwards belongs to a *later* op.
                // Erroring here would orphan an op every peer already
                // recorded as a world-wide success — a live eviction
                // racing the victim's wake-up from its final collective
                // would leave the op's key with a missing participant.
                if matches!(st.phase, Phase::Distributing) && st.outputs[self.index].is_some() {
                    break;
                }
                if let Some(rank) = st.poisoned {
                    self.withdraw(&mut st);
                    return Err(CommError::Poisoned { rank });
                }
                if let Some(err) = ctrl.reconfig_error() {
                    self.withdraw(&mut st);
                    self.inner.cond.notify_all();
                    return Err(err);
                }
                if st.round_id != my_id {
                    // A peer that had already skipped our op flushed this
                    // round (our deposit is gone) and claimed the group
                    // for a later collective.
                    self.withdraw(&mut st);
                    return Err(CommError::Abandoned {
                        op,
                        op_id: my_id,
                        stream_id: st.round_id,
                    });
                }
                if !matches!(st.phase, Phase::Collecting(_)) {
                    break;
                }
                if let Some(rank) = self.blocking_dead_member(&st) {
                    self.withdraw(&mut st);
                    self.inner.cond.notify_all();
                    return Err(CommError::RankDown { rank });
                }
                if expired(deadline) {
                    let waiting_on = self.waiting_on(&st);
                    self.withdraw(&mut st);
                    self.inner.cond.notify_all();
                    return Err(CommError::Timeout {
                        op,
                        waiting_on,
                        deadline: budget.unwrap_or_default(),
                        elapsed: started.elapsed(),
                    });
                }
                self.wait_step(&mut st, deadline);
            }
        }

        let Some(out) = st.outputs[self.index].take() else {
            // Distribution is underway but our slot is already gone:
            // only `settle_drain` scrubs slots, and only for ranks the
            // fleet marked dead — this rank was evicted while it slept
            // and a peer drained its output. Too late to claim the
            // result; exit with the verdict.
            self.settle_drain(&mut st);
            self.inner.cond.notify_all();
            return Err(CommError::RankDown {
                rank: self.global_rank,
            });
        };
        self.settle_drain(&mut st);
        // The op completed for this rank: advance its stream position.
        self.inner.streams[self.index].store(my_id + 1, Ordering::Relaxed);
        Ok(out)
    }

    /// Element-wise sum across the group; every rank ends with the total.
    ///
    /// Used for MP output combination and — crucially for the paper's §5 —
    /// the Gradient-AllReduce of data-parallel training.
    ///
    /// # Errors
    ///
    /// Returns deadline/fault errors; see [`GroupComm::run`] internals
    /// ([`CommError::Timeout`], [`CommError::RankDown`],
    /// [`CommError::Poisoned`]).
    ///
    /// # Panics
    ///
    /// Panics if members pass buffers of different lengths.
    pub fn all_reduce(&self, data: &mut [f32]) -> Result<()> {
        let out = self.run(OpTag::AllReduce, data.to_vec(), |inputs| {
            let len = inputs[0].len();
            for inp in inputs {
                assert_eq!(inp.len(), len, "all_reduce buffers must match in length");
            }
            let mut sum = vec![0.0f32; len];
            for inp in inputs {
                for (s, v) in sum.iter_mut().zip(inp) {
                    *s += v;
                }
            }
            vec![sum; inputs.len()]
        })?;
        data.copy_from_slice(&out);
        Ok(())
    }

    /// Concatenates every rank's buffer in group-index order; every rank
    /// receives the concatenation.
    ///
    /// This is the paper's ESP-AllGather (§2.2): it replicates dispatched
    /// tokens to all expert shards in the ESP group.
    ///
    /// # Errors
    ///
    /// Returns deadline/fault errors ([`CommError::Timeout`],
    /// [`CommError::RankDown`], [`CommError::Poisoned`]).
    pub fn all_gather(&self, data: &[f32]) -> Result<Vec<f32>> {
        self.run(OpTag::AllGather, data.to_vec(), |inputs| {
            let cat: Vec<f32> = inputs.iter().flatten().copied().collect();
            vec![cat; inputs.len()]
        })
    }

    /// Sums all buffers element-wise, then scatters the sum: rank `i`
    /// receives the `i`-th of `size` equal slices.
    ///
    /// This is the paper's ESP-ReduceScatter: it aggregates expert-shard
    /// outputs and splits the result back to the dispatch layout.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::BadBufferLength`] when the buffer does not
    /// divide evenly by the group size, plus deadline/fault errors.
    pub fn reduce_scatter(&self, data: &[f32]) -> Result<Vec<f32>> {
        let n = self.size();
        if !data.len().is_multiple_of(n) {
            return Err(CommError::BadBufferLength {
                op: "reduce_scatter",
                len: data.len(),
                group_size: n,
            });
        }
        self.run(OpTag::ReduceScatter, data.to_vec(), |inputs| {
            let len = inputs[0].len();
            let chunk = len / inputs.len();
            let mut sum = vec![0.0f32; len];
            for inp in inputs {
                assert_eq!(inp.len(), len, "reduce_scatter buffers must match");
                for (s, v) in sum.iter_mut().zip(inp) {
                    *s += v;
                }
            }
            (0..inputs.len())
                .map(|i| sum[i * chunk..(i + 1) * chunk].to_vec())
                .collect()
        })
    }

    /// Splits each rank's buffer into `size` equal chunks and transposes:
    /// rank `i` receives chunk `i` from every rank, concatenated in group
    /// order.
    ///
    /// This is AlltoAll Dispatch/Combine (§2.2), the operation expert
    /// parallelism uses to move tokens to their experts and back.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::BadBufferLength`] when the buffer does not
    /// divide evenly by the group size, plus deadline/fault errors.
    pub fn all_to_all(&self, data: &[f32]) -> Result<Vec<f32>> {
        let n = self.size();
        if !data.len().is_multiple_of(n) {
            return Err(CommError::BadBufferLength {
                op: "all_to_all",
                len: data.len(),
                group_size: n,
            });
        }
        self.run(OpTag::AllToAll, data.to_vec(), |inputs| {
            let len = inputs[0].len();
            let chunk = len / inputs.len();
            (0..inputs.len())
                .map(|dst| {
                    let mut out = Vec::with_capacity(len);
                    for src in inputs {
                        assert_eq!(src.len(), len, "all_to_all buffers must match");
                        out.extend_from_slice(&src[dst * chunk..(dst + 1) * chunk]);
                    }
                    out
                })
                .collect()
        })
    }

    /// Copies `root`'s buffer (by group index) to every rank.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankOutOfRange`] when `root` is not a valid
    /// group index, plus deadline/fault errors.
    pub fn broadcast(&self, root: usize, data: &mut [f32]) -> Result<()> {
        let n = self.size();
        if root >= n {
            return Err(CommError::RankOutOfRange {
                rank: root,
                world_size: n,
            });
        }
        let out = self.run(OpTag::Broadcast, data.to_vec(), move |inputs| {
            vec![inputs[root].clone(); inputs.len()]
        })?;
        data.copy_from_slice(&out);
        Ok(())
    }

    /// Blocks until every member of the group has reached the barrier.
    ///
    /// # Errors
    ///
    /// Returns deadline/fault errors ([`CommError::Timeout`],
    /// [`CommError::RankDown`], [`CommError::Poisoned`]).
    pub fn barrier(&self) -> Result<()> {
        let _ = self.run(OpTag::Barrier, Vec::new(), |inputs| {
            vec![Vec::new(); inputs.len()]
        })?;
        Ok(())
    }
}
