//! Group communicators and the collective state machine.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::{CommError, Result};

/// Which collective the group is currently executing, used to detect SPMD
/// violations (two ranks calling different collectives on one group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpTag {
    AllReduce,
    AllGather,
    ReduceScatter,
    AllToAll,
    Broadcast,
    Barrier,
}

#[derive(Debug)]
enum Phase {
    /// Ranks are depositing inputs; `usize` counts arrivals.
    Collecting(usize),
    /// Outputs are ready; `usize` counts ranks that have taken theirs.
    Distributing(usize),
}

#[derive(Debug)]
struct OpState {
    phase: Phase,
    tag: Option<OpTag>,
    inputs: Vec<Option<Vec<f32>>>,
    outputs: Vec<Option<Vec<f32>>>,
}

/// Shared state for one communication group.
#[derive(Debug)]
pub(crate) struct GroupInner {
    ranks: Vec<usize>,
    state: Mutex<OpState>,
    cond: Condvar,
}

impl GroupInner {
    pub(crate) fn new(ranks: Vec<usize>) -> Self {
        let n = ranks.len();
        GroupInner {
            ranks,
            state: Mutex::new(OpState {
                phase: Phase::Collecting(0),
                tag: None,
                inputs: vec![None; n],
                outputs: vec![None; n],
            }),
            cond: Condvar::new(),
        }
    }
}

/// A communicator bound to one rank's membership in one group.
///
/// All collectives block until every member of the group has joined the
/// call, exactly like their NCCL counterparts. The semantics follow the
/// MPI/NCCL definitions; see each method.
#[derive(Debug, Clone)]
pub struct GroupComm {
    inner: Arc<GroupInner>,
    /// This rank's index *within the group* (dense, 0-based).
    index: usize,
    /// This rank's global rank (for diagnostics).
    global_rank: usize,
}

impl GroupComm {
    pub(crate) fn new(inner: Arc<GroupInner>, global_rank: usize) -> Result<Self> {
        let index = inner
            .ranks
            .iter()
            .position(|&r| r == global_rank)
            .ok_or(CommError::NotAMember { rank: global_rank })?;
        Ok(GroupComm {
            inner,
            index,
            global_rank,
        })
    }

    /// Number of ranks in the group.
    pub fn size(&self) -> usize {
        self.inner.ranks.len()
    }

    /// This rank's dense index within the group.
    pub fn group_index(&self) -> usize {
        self.index
    }

    /// The global ranks composing the group, in group-index order.
    pub fn ranks(&self) -> &[usize] {
        &self.inner.ranks
    }

    /// The core rendezvous: deposit `input`, wait for all members, let the
    /// last arrival compute all outputs with `compute`, then take ours.
    ///
    /// # Panics
    ///
    /// Panics when members concurrently issue different collectives on the
    /// same group (an SPMD violation that would otherwise deadlock).
    fn run<F>(&self, tag: OpTag, input: Vec<f32>, compute: F) -> Vec<f32>
    where
        F: FnOnce(&[Vec<f32>]) -> Vec<Vec<f32>>,
    {
        let n = self.size();
        let mut st = self.inner.state.lock();

        // Wait out the drain of a previous collective.
        while matches!(st.phase, Phase::Distributing(_)) {
            self.inner.cond.wait(&mut st);
        }

        match st.tag {
            None => st.tag = Some(tag),
            Some(t) => assert_eq!(
                t, tag,
                "SPMD violation on group {:?}: rank {} called {:?} while {:?} in flight",
                self.inner.ranks, self.global_rank, tag, t
            ),
        }

        st.inputs[self.index] = Some(input);
        let arrived = match &mut st.phase {
            Phase::Collecting(c) => {
                *c += 1;
                *c
            }
            Phase::Distributing(_) => unreachable!("waited out distribution above"),
        };

        if arrived == n {
            let inputs: Vec<Vec<f32>> = st
                .inputs
                .iter_mut()
                .map(|s| s.take().expect("all inputs deposited"))
                .collect();
            let outputs = compute(&inputs);
            assert_eq!(outputs.len(), n, "compute must yield one output per rank");
            for (slot, out) in st.outputs.iter_mut().zip(outputs) {
                *slot = Some(out);
            }
            st.phase = Phase::Distributing(0);
            self.inner.cond.notify_all();
        } else {
            while matches!(st.phase, Phase::Collecting(_)) {
                self.inner.cond.wait(&mut st);
            }
        }

        let out = st.outputs[self.index]
            .take()
            .expect("output present in distribution phase");
        if let Phase::Distributing(taken) = &mut st.phase {
            *taken += 1;
            if *taken == n {
                st.phase = Phase::Collecting(0);
                st.tag = None;
                self.inner.cond.notify_all();
            }
        }
        out
    }

    /// Element-wise sum across the group; every rank ends with the total.
    ///
    /// Used for MP output combination and — crucially for the paper's §5 —
    /// the Gradient-AllReduce of data-parallel training.
    ///
    /// # Panics
    ///
    /// Panics if members pass buffers of different lengths.
    pub fn all_reduce(&self, data: &mut [f32]) {
        let out = self.run(OpTag::AllReduce, data.to_vec(), |inputs| {
            let len = inputs[0].len();
            for inp in inputs {
                assert_eq!(inp.len(), len, "all_reduce buffers must match in length");
            }
            let mut sum = vec![0.0f32; len];
            for inp in inputs {
                for (s, v) in sum.iter_mut().zip(inp) {
                    *s += v;
                }
            }
            vec![sum; inputs.len()]
        });
        data.copy_from_slice(&out);
    }

    /// Concatenates every rank's buffer in group-index order; every rank
    /// receives the concatenation.
    ///
    /// This is the paper's ESP-AllGather (§2.2): it replicates dispatched
    /// tokens to all expert shards in the ESP group.
    pub fn all_gather(&self, data: &[f32]) -> Vec<f32> {
        self.run(OpTag::AllGather, data.to_vec(), |inputs| {
            let cat: Vec<f32> = inputs.iter().flatten().copied().collect();
            vec![cat; inputs.len()]
        })
    }

    /// Sums all buffers element-wise, then scatters the sum: rank `i`
    /// receives the `i`-th of `size` equal slices.
    ///
    /// This is the paper's ESP-ReduceScatter: it aggregates expert-shard
    /// outputs and splits the result back to the dispatch layout.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::BadBufferLength`] when the buffer does not
    /// divide evenly by the group size.
    pub fn reduce_scatter(&self, data: &[f32]) -> Result<Vec<f32>> {
        let n = self.size();
        if !data.len().is_multiple_of(n) {
            return Err(CommError::BadBufferLength {
                op: "reduce_scatter",
                len: data.len(),
                group_size: n,
            });
        }
        Ok(self.run(OpTag::ReduceScatter, data.to_vec(), |inputs| {
            let len = inputs[0].len();
            let chunk = len / inputs.len();
            let mut sum = vec![0.0f32; len];
            for inp in inputs {
                assert_eq!(inp.len(), len, "reduce_scatter buffers must match");
                for (s, v) in sum.iter_mut().zip(inp) {
                    *s += v;
                }
            }
            (0..inputs.len())
                .map(|i| sum[i * chunk..(i + 1) * chunk].to_vec())
                .collect()
        }))
    }

    /// Splits each rank's buffer into `size` equal chunks and transposes:
    /// rank `i` receives chunk `i` from every rank, concatenated in group
    /// order.
    ///
    /// This is AlltoAll Dispatch/Combine (§2.2), the operation expert
    /// parallelism uses to move tokens to their experts and back.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::BadBufferLength`] when the buffer does not
    /// divide evenly by the group size.
    pub fn all_to_all(&self, data: &[f32]) -> Result<Vec<f32>> {
        let n = self.size();
        if !data.len().is_multiple_of(n) {
            return Err(CommError::BadBufferLength {
                op: "all_to_all",
                len: data.len(),
                group_size: n,
            });
        }
        Ok(self.run(OpTag::AllToAll, data.to_vec(), |inputs| {
            let len = inputs[0].len();
            let chunk = len / inputs.len();
            (0..inputs.len())
                .map(|dst| {
                    let mut out = Vec::with_capacity(len);
                    for src in inputs {
                        assert_eq!(src.len(), len, "all_to_all buffers must match");
                        out.extend_from_slice(&src[dst * chunk..(dst + 1) * chunk]);
                    }
                    out
                })
                .collect()
        }))
    }

    /// Copies `root`'s buffer (by group index) to every rank.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankOutOfRange`] when `root` is not a valid
    /// group index.
    pub fn broadcast(&self, root: usize, data: &mut [f32]) -> Result<()> {
        let n = self.size();
        if root >= n {
            return Err(CommError::RankOutOfRange {
                rank: root,
                world_size: n,
            });
        }
        let out = self.run(OpTag::Broadcast, data.to_vec(), move |inputs| {
            vec![inputs[root].clone(); inputs.len()]
        });
        data.copy_from_slice(&out);
        Ok(())
    }

    /// Blocks until every member of the group has reached the barrier.
    pub fn barrier(&self) {
        let _ = self.run(OpTag::Barrier, Vec::new(), |inputs| {
            vec![Vec::new(); inputs.len()]
        });
    }
}
