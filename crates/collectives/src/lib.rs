//! A thread-backed collective-communication runtime.
//!
//! The paper runs on NCCL; this crate reproduces the *semantics* of the
//! five collectives an MoE layer needs — AllReduce, AllGather,
//! ReduceScatter, AlltoAll and Broadcast — over OS threads with real data
//! movement, so the MoE data plane in `fsmoe` computes numerically correct
//! results under any schedule. (Timing is the job of the `simnet` crate;
//! here only correctness matters.)
//!
//! # Model
//!
//! A [`CommWorld`] owns `P` ranks. Each rank runs on its own thread and
//! holds a [`Communicator`]. Ranks form [`GroupComm`]s over arbitrary rank
//! subsets — the same subsets the paper's hybrid DP+MP+EP+ESP parallelism
//! uses, which [`HybridTopology`] constructs (§2.2, Fig. 2).
//!
//! Collectives are SPMD: every member of a group must call the same
//! operation in the same order. Mismatched calls are detected and panic
//! with a diagnostic rather than deadlocking.
//!
//! # Example
//!
//! ```
//! use collectives::CommWorld;
//! use std::thread;
//!
//! let world = CommWorld::new(4);
//! let handles: Vec<_> = world
//!     .into_communicators()
//!     .into_iter()
//!     .map(|comm| {
//!         thread::spawn(move || {
//!             let group = comm.world_group();
//!             let mut x = vec![comm.rank() as f32];
//!             group.all_reduce(&mut x);
//!             assert_eq!(x[0], 6.0); // 0+1+2+3
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! ```

mod error;
mod group;
mod topology;
mod world;

pub use error::CommError;
pub use group::GroupComm;
pub use topology::{HybridTopology, ParallelDims};
pub use world::{CommWorld, Communicator};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CommError>;

/// Runs `f` once per rank on `size` threads, passing each its
/// [`Communicator`], and returns the per-rank results in rank order.
///
/// This is the harness every multi-rank test and example uses.
///
/// # Panics
///
/// Propagates panics from rank threads.
pub fn run_ranks<T, F>(size: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Communicator) -> T + Send + Sync + 'static,
{
    let world = CommWorld::new(size);
    let f = std::sync::Arc::new(f);
    let handles: Vec<_> = world
        .into_communicators()
        .into_iter()
        .map(|comm| {
            let f = std::sync::Arc::clone(&f);
            std::thread::spawn(move || f(comm))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("rank thread panicked"))
        .collect()
}
