//! A thread-backed collective-communication runtime.
//!
//! The paper runs on NCCL; this crate reproduces the *semantics* of the
//! five collectives an MoE layer needs — AllReduce, AllGather,
//! ReduceScatter, AlltoAll and Broadcast — over OS threads with real data
//! movement, so the MoE data plane in `fsmoe` computes numerically correct
//! results under any schedule. (Timing is the job of the `simnet` crate;
//! here only correctness matters.)
//!
//! # Model
//!
//! A [`CommWorld`] owns `P` ranks. Each rank runs on its own thread and
//! holds a [`Communicator`]. Ranks form [`GroupComm`]s over arbitrary rank
//! subsets — the same subsets the paper's hybrid DP+MP+EP+ESP parallelism
//! uses, which [`HybridTopology`] constructs (§2.2, Fig. 2).
//!
//! Collectives are SPMD: every member of a group must call the same
//! operation in the same order. Mismatched calls are detected, poison the
//! group, and panic with a diagnostic rather than deadlocking.
//!
//! # Fault model
//!
//! Production clusters lose ranks. The runtime therefore supports:
//!
//! * **deadlines** ([`CommWorld::with_deadline`]) — an absent peer turns
//!   into [`CommError::Timeout`] instead of a hang;
//! * **dead-rank tracking** ([`Communicator::declare_dead`]) — peers of a
//!   dead rank fail fast with [`CommError::RankDown`];
//! * **panic poisoning** — a rank that panics mid-collective poisons the
//!   group, and peers get [`CommError::Poisoned`];
//! * **op-stream ids** — every rendezvous round is stamped with a
//!   monotonic per-group op id ([`GroupComm::skip_op`] advances past an
//!   abandoned exchange), so a degraded collective can never cross-wire
//!   with a straggler's late deposit: behind-the-stream ranks get
//!   [`CommError::Abandoned`] instead of silently mixed payloads;
//! * **fault injection** ([`FaultInjector`], [`CommWorld::with_faults`])
//!   — deterministic, seedable schedules of rank kills, straggler delays,
//!   payload drops and persistent brownouts ([`Brownout`]), so every
//!   collective can be attacked in tests;
//! * **adaptive deadlines** ([`DeadlineController`],
//!   [`CommWorld::with_adaptive_deadlines`]) — per-op budgets derived
//!   from profiler α–β fits and observed p99 instead of one static
//!   world-wide deadline, so gray failures surface as health decay
//!   rather than being masked by generous fixed timeouts;
//! * **elastic membership** ([`Communicator::propose_evict`],
//!   [`Communicator::reconfigured`]) — survivors of a permanently dead
//!   rank agree to evict it, the membership epoch bumps, the old world
//!   is fenced (in-flight ops fail with [`CommError::Reconfigured`]) and
//!   each survivor rebinds into a shrunken world with contiguous ranks
//!   and fresh op streams.
//!
//! # Example
//!
//! ```
//! use collectives::CommWorld;
//! use std::thread;
//!
//! let world = CommWorld::new(4);
//! let handles: Vec<_> = world
//!     .into_communicators()
//!     .into_iter()
//!     .map(|comm| {
//!         thread::spawn(move || {
//!             let group = comm.world_group();
//!             let mut x = vec![comm.rank() as f32];
//!             group.all_reduce(&mut x).unwrap();
//!             assert_eq!(x[0], 6.0); // 0+1+2+3
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! ```

mod deadline;
mod error;
mod fault;
mod group;
mod topology;
mod world;

pub use deadline::{DeadlineConfig, DeadlineController};
pub use error::CommError;
pub use fault::{Brownout, FaultAction, FaultInjector};
pub use group::GroupComm;
pub use topology::{HybridTopology, ParallelDims};
pub use world::{CommWorld, Communicator};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CommError>;

/// Runs `f` once per rank on `size` threads, passing each its
/// [`Communicator`], and returns the per-rank results in rank order.
///
/// This is the harness every multi-rank test and example uses.
///
/// # Panics
///
/// Propagates panics from rank threads.
pub fn run_ranks<T, F>(size: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Communicator) -> T + Send + Sync + 'static,
{
    run_world(CommWorld::new(size), f)
}

/// Like [`run_ranks`], but over a pre-configured [`CommWorld`] (deadline,
/// fault schedule, …).
///
/// # Panics
///
/// Propagates panics from rank threads.
pub fn run_world<T, F>(world: CommWorld, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Communicator) -> T + Send + Sync + 'static,
{
    obs::flight::init_from_env();
    let f = std::sync::Arc::new(f);
    let handles: Vec<_> = world
        .into_communicators()
        .into_iter()
        .map(|comm| {
            let f = std::sync::Arc::clone(&f);
            std::thread::spawn(move || {
                // Unconditional: the flight recorder labels rank rows in
                // post-mortem dumps even with the registry disabled.
                obs::set_thread_name(&format!("rank {}", comm.rank()));
                f(comm)
            })
        })
        .collect();
    handles
        .into_iter()
        // lint: allow(unwrap) — test harness: a rank panic must
        // propagate to the calling test, not become a Result.
        .map(|h| h.join().expect("rank thread panicked"))
        .collect()
}

/// Like [`run_world`], but panics if any rank fails to finish within
/// `budget` — the watchdog chaos tests use to prove no collective hangs.
///
/// Results come back in rank order. Rank threads that panic re-panic
/// here; rank threads that *hang* trip the watchdog without being joined
/// (they are left detached so the test suite can fail cleanly).
///
/// # Panics
///
/// Panics when a rank thread panics or does not finish within `budget`.
pub fn run_world_within<T, F>(world: CommWorld, budget: std::time::Duration, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Communicator) -> T + Send + Sync + 'static,
{
    obs::flight::init_from_env();
    let size = world.size();
    let f = std::sync::Arc::new(f);
    let (tx, rx) = std::sync::mpsc::channel();
    for comm in world.into_communicators() {
        let f = std::sync::Arc::clone(&f);
        let tx = tx.clone();
        std::thread::spawn(move || {
            let rank = comm.rank();
            obs::set_thread_name(&format!("rank {rank}"));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm)));
            let _ = tx.send((rank, result));
        });
    }
    drop(tx);
    let deadline = std::time::Instant::now() + budget;
    let mut slots: Vec<Option<T>> = (0..size).map(|_| None).collect();
    for _ in 0..size {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        match rx.recv_timeout(remaining) {
            Ok((rank, Ok(value))) => slots[rank] = Some(value),
            Ok((rank, Err(payload))) => {
                panic!("rank {rank} panicked: {}", panic_message(&payload))
            }
            Err(_) => {
                let missing: Vec<usize> = slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_none())
                    .map(|(i, _)| i)
                    .collect();
                // Drain the flight rings *before* the panic unwinds the
                // harness: the hung ranks' open spans are the diagnosis.
                obs::flight::try_dump("watchdog");
                panic!(
                    "watchdog: ranks {missing:?} still running after {budget:?} — collective hang"
                );
            }
        }
    }
    slots
        .into_iter()
        // lint: allow(unwrap) — the watchdog loop above panics before
        // this point unless every slot was filled.
        .map(|s| s.expect("all ranks reported"))
        .collect()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}
