//! World construction and sub-group registry.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::group::GroupInner;
use crate::{CommError, GroupComm, Result};

/// Shared registry mapping a rank set to its group state, so every rank
/// that requests the same sub-group binds to the same rendezvous object.
#[derive(Debug, Default)]
struct GroupRegistry {
    groups: Mutex<HashMap<Vec<usize>, Arc<GroupInner>>>,
}

impl GroupRegistry {
    fn lookup(&self, ranks: &[usize]) -> Arc<GroupInner> {
        let mut map = self.groups.lock();
        Arc::clone(
            map.entry(ranks.to_vec())
                .or_insert_with(|| Arc::new(GroupInner::new(ranks.to_vec()))),
        )
    }
}

/// A world of `P` communicating ranks.
///
/// Construct one per simulated cluster, then hand each rank thread its
/// [`Communicator`] via [`CommWorld::into_communicators`].
#[derive(Debug)]
pub struct CommWorld {
    size: usize,
    registry: Arc<GroupRegistry>,
}

impl CommWorld {
    /// Creates a world with `size` ranks.
    ///
    /// # Panics
    ///
    /// Panics when `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world size must be positive");
        CommWorld {
            size,
            registry: Arc::new(GroupRegistry::default()),
        }
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Consumes the world, producing one [`Communicator`] per rank, in
    /// rank order.
    pub fn into_communicators(self) -> Vec<Communicator> {
        (0..self.size)
            .map(|rank| Communicator {
                rank,
                world_size: self.size,
                registry: Arc::clone(&self.registry),
            })
            .collect()
    }
}

/// One rank's handle into a [`CommWorld`].
///
/// Cheap to clone; clones refer to the same rank.
#[derive(Debug, Clone)]
pub struct Communicator {
    rank: usize,
    world_size: usize,
    registry: Arc<GroupRegistry>,
}

impl Communicator {
    /// This rank's global rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// The group containing every rank in the world.
    pub fn world_group(&self) -> GroupComm {
        let ranks: Vec<usize> = (0..self.world_size).collect();
        self.subgroup(&ranks)
            .expect("every rank is a member of the world group")
    }

    /// Binds this rank into the group over `ranks`.
    ///
    /// All members must call `subgroup` with an identical rank list (the
    /// SPMD convention NCCL communicator creation follows too).
    ///
    /// # Errors
    ///
    /// Returns an error when `ranks` is empty, contains duplicates or
    /// out-of-range ranks, or does not include this rank.
    pub fn subgroup(&self, ranks: &[usize]) -> Result<GroupComm> {
        if ranks.is_empty() {
            return Err(CommError::InvalidGroup {
                reason: "empty rank list".into(),
            });
        }
        let mut seen = vec![false; self.world_size];
        for &r in ranks {
            if r >= self.world_size {
                return Err(CommError::RankOutOfRange {
                    rank: r,
                    world_size: self.world_size,
                });
            }
            if seen[r] {
                return Err(CommError::InvalidGroup {
                    reason: format!("duplicate rank {r}"),
                });
            }
            seen[r] = true;
        }
        GroupComm::new(self.registry.lookup(ranks), self.rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_produces_one_communicator_per_rank() {
        let comms = CommWorld::new(4).into_communicators();
        assert_eq!(comms.len(), 4);
        for (i, c) in comms.iter().enumerate() {
            assert_eq!(c.rank(), i);
            assert_eq!(c.world_size(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_world_panics() {
        let _ = CommWorld::new(0);
    }

    #[test]
    fn subgroup_validation() {
        let comms = CommWorld::new(4).into_communicators();
        assert!(comms[0].subgroup(&[]).is_err());
        assert!(comms[0].subgroup(&[0, 0]).is_err());
        assert!(comms[0].subgroup(&[0, 9]).is_err());
        // not a member
        assert!(matches!(
            comms[3].subgroup(&[0, 1]),
            Err(CommError::NotAMember { rank: 3 })
        ));
        let g = comms[1].subgroup(&[0, 1]).unwrap();
        assert_eq!(g.group_index(), 1);
        assert_eq!(g.ranks(), &[0, 1]);
    }

    #[test]
    fn same_rank_list_binds_same_group() {
        let comms = CommWorld::new(2).into_communicators();
        let a = comms[0].subgroup(&[0, 1]).unwrap();
        let b = comms[1].subgroup(&[0, 1]).unwrap();
        // Verified indirectly: they must rendezvous. Run a barrier across
        // two threads.
        let t = std::thread::spawn(move || b.barrier());
        a.barrier();
        t.join().unwrap();
    }
}
