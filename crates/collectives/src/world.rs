//! World construction, sub-group registry, and world-wide fault state —
//! including the membership-epoch control plane that lets survivors
//! evict a permanently dead rank and continue on a shrunken world.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::deadline::DeadlineController;
use crate::fault::FaultInjector;
use crate::group::{GroupInner, FAULT_POLL};
use crate::{CommError, GroupComm, Result};

/// The shrunken world an agreed eviction produces: who survived (old
/// global ranks, ascending — a survivor's new rank is its index here)
/// and the fresh registry every survivor rebinds through.
#[derive(Debug)]
struct NextWorld {
    epoch: u64,
    survivors: Vec<usize>,
    registry: Arc<GroupRegistry>,
}

/// The in-progress eviction vote: at most one victim per epoch, one vote
/// per live rank, and the completed `next` world once everyone agreed.
#[derive(Debug)]
struct ReconfigVote {
    victim: Option<usize>,
    votes: Vec<bool>,
    next: Option<NextWorld>,
}

/// The in-progress hot-expert migration fence: at most one
/// `(expert, from, to)` key at a time, one join per live rank.
/// `generation` counts completed fences; joiners detect completion by
/// the generation advancing past the value they captured at join time,
/// so withdraw-on-error (timeout, eviction conflict) is atomic: either
/// the fence completed for everyone or the withdrawn rank never counted.
#[derive(Debug)]
struct MigrationFenceState {
    key: Option<(usize, usize, usize)>,
    joined: Vec<bool>,
    generation: u64,
}

/// World-wide control plane shared by every group: which ranks are dead,
/// which faults are scheduled, and the membership epoch. Dead-rank and
/// fence reads are lock-free so the rendezvous hot path can consult them
/// while holding a group lock.
#[derive(Debug)]
pub(crate) struct WorldCtrl {
    dead: Vec<AtomicBool>,
    injector: Option<FaultInjector>,
    /// Adaptive per-op deadline controller, when armed. Shared by all
    /// ranks and carried into reconfigured worlds, so per-op budget
    /// state survives membership changes.
    adaptive: Option<Arc<DeadlineController>>,
    /// Per-rank cumulative time (µs) spent blocked in collective
    /// rendezvous waits — the live signal health scoring subtracts from
    /// step wall time to get per-rank *self* time.
    waited: Vec<AtomicU64>,
    /// Membership epoch: starts at the parent world's epoch (0 for a
    /// fresh [`CommWorld`]) and bumps once per agreed eviction.
    epoch: AtomicU64,
    /// Set when an eviction completes: the world is retired, and every
    /// in-flight or future collective on it fails with
    /// [`CommError::Reconfigured`].
    fenced: AtomicBool,
    reconfig: Mutex<ReconfigVote>,
    reconfig_cond: Condvar,
    /// Set as soon as any rank proposes an eviction; read lock-free by
    /// the migration fence so it can yield to membership changes
    /// without nesting the reconfig mutex under the migration mutex.
    evict_pending: AtomicBool,
    migration: Mutex<MigrationFenceState>,
    migration_cond: Condvar,
}

impl WorldCtrl {
    fn new(
        size: usize,
        injector: Option<FaultInjector>,
        epoch: u64,
        adaptive: Option<Arc<DeadlineController>>,
    ) -> Self {
        WorldCtrl {
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
            injector,
            adaptive,
            waited: (0..size).map(|_| AtomicU64::new(0)).collect(),
            epoch: AtomicU64::new(epoch),
            fenced: AtomicBool::new(false),
            reconfig: Mutex::new(ReconfigVote {
                victim: None,
                votes: vec![false; size],
                next: None,
            }),
            reconfig_cond: Condvar::new(),
            evict_pending: AtomicBool::new(false),
            migration: Mutex::new(MigrationFenceState {
                key: None,
                joined: vec![false; size],
                generation: 0,
            }),
            migration_cond: Condvar::new(),
        }
    }

    pub(crate) fn is_dead(&self, rank: usize) -> bool {
        self.dead
            .get(rank)
            .is_some_and(|d| d.load(Ordering::Acquire))
    }

    pub(crate) fn mark_dead(&self, rank: usize) {
        if let Some(d) = self.dead.get(rank) {
            d.store(true, Ordering::Release);
        }
    }

    pub(crate) fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    pub(crate) fn adaptive(&self) -> Option<&Arc<DeadlineController>> {
        self.adaptive.as_ref()
    }

    /// Accumulates `us` microseconds of blocked rendezvous wait for
    /// `rank`. Relaxed: the counter is monotone telemetry, not a
    /// synchronization edge.
    pub(crate) fn add_blocked_wait(&self, rank: usize, us: u64) {
        if let Some(w) = self.waited.get(rank) {
            w.fetch_add(us, Ordering::Relaxed);
        }
    }

    pub(crate) fn blocked_wait_us(&self, rank: usize) -> u64 {
        self.waited
            .get(rank)
            .map_or(0, |w| w.load(Ordering::Relaxed))
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The error a fenced world's collectives fail with, if fenced.
    pub(crate) fn reconfig_error(&self) -> Option<CommError> {
        if self.fenced.load(Ordering::Acquire) {
            Some(CommError::Reconfigured {
                epoch: self.epoch(),
            })
        } else {
            None
        }
    }
}

/// Shared registry mapping a rank set to its group state, so every rank
/// that requests the same sub-group binds to the same rendezvous object.
/// A `BTreeMap` so [`GroupRegistry::wake_all_groups`] wakes groups in a
/// deterministic order (DESIGN.md §13).
#[derive(Debug)]
struct GroupRegistry {
    groups: Mutex<BTreeMap<Vec<usize>, Arc<GroupInner>>>,
    ctrl: Arc<WorldCtrl>,
}

impl GroupRegistry {
    fn lookup(&self, ranks: &[usize]) -> Arc<GroupInner> {
        let mut map = self.groups.lock();
        Arc::clone(
            map.entry(ranks.to_vec())
                .or_insert_with(|| Arc::new(GroupInner::new(ranks.to_vec(), &self.ctrl))),
        )
    }

    /// Wakes every waiter on every group, so ranks blocked in a
    /// rendezvous observe a fence (or a death) without waiting out the
    /// fault-poll interval.
    fn wake_all_groups(&self) {
        let map = self.groups.lock();
        for group in map.values() {
            group.wake_all();
        }
    }
}

/// A world of `P` communicating ranks.
///
/// Construct one per simulated cluster, then hand each rank thread its
/// [`Communicator`] via [`CommWorld::into_communicators`]. Worlds are
/// configured before the split: [`CommWorld::with_deadline`] arms a
/// collective deadline on every group, [`CommWorld::with_faults`]
/// installs a [`FaultInjector`].
#[derive(Debug)]
pub struct CommWorld {
    size: usize,
    deadline: Option<Duration>,
    injector: Option<FaultInjector>,
    adaptive: Option<Arc<DeadlineController>>,
}

impl CommWorld {
    /// Creates a world with `size` ranks, no deadline, no faults.
    ///
    /// # Panics
    ///
    /// Panics when `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world size must be positive");
        CommWorld {
            size,
            deadline: None,
            injector: None,
            adaptive: None,
        }
    }

    /// Arms a deadline on every collective: a rank whose peers have not
    /// all joined (or drained) within `deadline` gets
    /// [`CommError::Timeout`] instead of blocking forever.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Installs a fault injector consulted by every collective.
    #[must_use]
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Arms the adaptive deadline controller: every collective derives
    /// its budget from `controller` ([`DeadlineController::budget`],
    /// keyed by op name and payload bytes) instead of the static
    /// [`CommWorld::with_deadline`] value, and feeds its completion
    /// time back as an observed sample. The static deadline (if any)
    /// still applies to control-plane ops ([`Communicator::propose_evict`],
    /// [`Communicator::migration_fence`]), whose costs are
    /// vote-latency-bound, not payload-bound.
    #[must_use]
    pub fn with_adaptive_deadlines(mut self, controller: Arc<DeadlineController>) -> Self {
        self.adaptive = Some(controller);
        self
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Consumes the world, producing one [`Communicator`] per rank, in
    /// rank order.
    pub fn into_communicators(self) -> Vec<Communicator> {
        let ctrl = Arc::new(WorldCtrl::new(self.size, self.injector, 0, self.adaptive));
        let registry = Arc::new(GroupRegistry {
            groups: Mutex::new(BTreeMap::new()),
            ctrl,
        });
        (0..self.size)
            .map(|rank| Communicator {
                rank,
                world_size: self.size,
                deadline: self.deadline,
                registry: Arc::clone(&registry),
            })
            .collect()
    }
}

/// One rank's handle into a [`CommWorld`].
///
/// Cheap to clone; clones refer to the same rank.
#[derive(Debug, Clone)]
pub struct Communicator {
    rank: usize,
    world_size: usize,
    deadline: Option<Duration>,
    registry: Arc<GroupRegistry>,
}

impl Communicator {
    /// This rank's global rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// The collective deadline groups created by this communicator
    /// inherit (`None` = wait forever).
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Overrides the inherited collective deadline for groups created
    /// *after* this call.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// The adaptive deadline controller armed on this world, if any.
    pub fn deadline_controller(&self) -> Option<Arc<DeadlineController>> {
        self.registry.ctrl.adaptive().cloned()
    }

    /// Cumulative time `rank` has spent blocked in collective
    /// rendezvous waits on this world, µs. Monotone; callers diff
    /// consecutive readings to get per-step blocked time. A rank's step
    /// wall time minus its blocked-wait delta is its *self* time — the
    /// quantity `models::health` scores, because a limping rank shows
    /// large self time while its healthy peers show large waits.
    pub fn blocked_wait_us(&self, rank: usize) -> u64 {
        self.registry.ctrl.blocked_wait_us(rank)
    }

    /// Whether `rank` is known to be dead (killed by fault injection or
    /// declared via [`Communicator::declare_dead`]).
    pub fn is_dead(&self, rank: usize) -> bool {
        self.registry.ctrl.is_dead(rank)
    }

    /// Declares `rank` dead world-wide. Every in-flight and future
    /// collective on a group containing `rank` fails with
    /// [`CommError::RankDown`] instead of waiting for it.
    pub fn declare_dead(&self, rank: usize) {
        self.registry.ctrl.mark_dead(rank);
        self.registry.ctrl.migration_cond.notify_all();
        self.registry.wake_all_groups();
    }

    /// The world's current membership epoch (0 until the first eviction
    /// completes; carried over into reconfigured worlds, so it is
    /// monotone across cascaded evictions).
    pub fn membership_epoch(&self) -> u64 {
        self.registry.ctrl.epoch()
    }

    /// Proposes evicting `victim` from the world and blocks until every
    /// *live* rank has agreed — a control-plane barrier among survivors.
    ///
    /// The victim is marked dead immediately, so in-flight data-plane
    /// collectives involving it fail fast with [`CommError::RankDown`]
    /// while the vote is still collecting. When the last live rank
    /// votes, the membership epoch bumps, the old world is *fenced*
    /// (every subsequent collective on it fails with
    /// [`CommError::Reconfigured`]) and a shrunken world is published
    /// for [`Communicator::reconfigured`] to hand out. Calling again
    /// with the same victim after completion is idempotent.
    ///
    /// Ranks that die *during* the vote are excluded from both the
    /// agreement and the survivor set. The fault injector is **not**
    /// carried into the new world: its schedule is keyed by old ranks.
    ///
    /// Returns the new membership epoch.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankOutOfRange`] for an out-of-world victim,
    /// [`CommError::InvalidGroup`] when proposing to evict oneself,
    /// [`CommError::RankDown`] when the caller itself is dead,
    /// [`CommError::EvictConflict`] when a different victim is already
    /// under agreement this epoch, and [`CommError::Timeout`] (with
    /// `op = "propose_evict"`) when the communicator's deadline expires
    /// before every live rank votes.
    pub fn propose_evict(&self, victim: usize) -> Result<u64> {
        let ctrl = &self.registry.ctrl;
        if victim >= self.world_size {
            return Err(CommError::RankOutOfRange {
                rank: victim,
                world_size: self.world_size,
            });
        }
        if victim == self.rank {
            return Err(CommError::InvalidGroup {
                reason: format!("rank {} cannot propose evicting itself", self.rank),
            });
        }
        if ctrl.is_dead(self.rank) {
            return Err(CommError::RankDown { rank: self.rank });
        }
        // Fail in-flight data-plane ops involving the victim fast, and
        // signal any migration fence that membership is changing:
        // evictions always win over migrations.
        ctrl.mark_dead(victim);
        ctrl.evict_pending.store(true, Ordering::Release);
        ctrl.migration_cond.notify_all();
        self.registry.wake_all_groups();

        let started = Instant::now();
        let deadline = self.deadline.map(|d| started + d);
        let mut vote = ctrl.reconfig.lock();
        match vote.victim {
            None => vote.victim = Some(victim),
            Some(v) if v == victim => {}
            Some(v) => {
                return Err(CommError::EvictConflict {
                    proposed: victim,
                    agreed: v,
                })
            }
        }
        vote.votes[self.rank] = true;
        ctrl.reconfig_cond.notify_all();
        loop {
            if let Some(next) = &vote.next {
                return Ok(next.epoch);
            }
            let live: Vec<usize> = (0..self.world_size).filter(|&r| !ctrl.is_dead(r)).collect();
            if live.iter().all(|&r| vote.votes[r]) {
                // Last voter: publish the shrunken world and fence this
                // one. Survivors are the live ranks in ascending order;
                // a survivor's new rank is its index in that list.
                let epoch = ctrl.epoch.fetch_add(1, Ordering::AcqRel) + 1;
                // The adaptive controller carries over: its per-op
                // budget state is rank-agnostic, so the shrunken world
                // starts with warm budgets instead of ceilings.
                let new_ctrl = Arc::new(WorldCtrl::new(
                    live.len(),
                    None,
                    epoch,
                    ctrl.adaptive.clone(),
                ));
                let registry = Arc::new(GroupRegistry {
                    groups: Mutex::new(BTreeMap::new()),
                    ctrl: new_ctrl,
                });
                vote.next = Some(NextWorld {
                    epoch,
                    survivors: live,
                    registry,
                });
                ctrl.fenced.store(true, Ordering::Release);
                obs::counter_add(obs::names::COLLECTIVES_EVICTIONS, 1);
                obs::set_gauge(obs::names::COLLECTIVES_MEMBERSHIP_EPOCH, epoch as f64);
                ctrl.reconfig_cond.notify_all();
                self.registry.wake_all_groups();
                return Ok(epoch);
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                let waiting_on = live.iter().copied().filter(|&r| !vote.votes[r]).collect();
                return Err(CommError::Timeout {
                    op: "propose_evict",
                    waiting_on,
                    deadline: self.deadline.unwrap_or_default(),
                    elapsed: started.elapsed(),
                });
            }
            // Bounded wait: a voter may die without notifying this
            // condvar, so re-check the live set every FAULT_POLL.
            let dur = match deadline {
                Some(d) => d.saturating_duration_since(Instant::now()).min(FAULT_POLL),
                None => FAULT_POLL,
            };
            let _ = ctrl.reconfig_cond.wait_for(&mut vote, dur);
        }
    }

    /// Joins the world-wide migration fence for moving `expert` from
    /// rank `from` to rank `to`, blocking until every *live* rank has
    /// joined with the same key — an epoch-style control-plane barrier
    /// that quiesces in-flight work without renumbering the world.
    ///
    /// Because every live rank is *inside* the fence when it releases,
    /// no rank can be mid-collective at that moment: the fence is the
    /// quiesce point after which the expert's weights can be
    /// transferred rank-to-rank and the new placement installed with no
    /// in-flight dispatch addressed to the old owner. Completion bumps
    /// the fence generation and the `collectives.migration_fences`
    /// counter.
    ///
    /// Error paths withdraw atomically: under the fence lock, a rank
    /// first checks whether the generation already advanced (in which
    /// case the fence completed and it reports success) and only
    /// otherwise retracts its join — so either every joiner observes
    /// completion or the fence never completes for anyone, and no two
    /// ranks can disagree about whether the migration happened.
    ///
    /// Returns the completed fence generation.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::RankOutOfRange`] / [`CommError::InvalidGroup`]
    /// for malformed keys, [`CommError::RankDown`] when the caller, the
    /// source or the destination rank is dead,
    /// [`CommError::Reconfigured`] on a fenced (post-eviction) world,
    /// [`CommError::MigrationConflict`] when an eviction vote is in
    /// progress (evictions win) or another fence with a different key
    /// is collecting joins, and [`CommError::Timeout`] (with
    /// `op = "migration_fence"`) when the communicator's deadline
    /// expires before every live rank joins.
    pub fn migration_fence(&self, expert: usize, from: usize, to: usize) -> Result<u64> {
        let ctrl = &self.registry.ctrl;
        for r in [from, to] {
            if r >= self.world_size {
                return Err(CommError::RankOutOfRange {
                    rank: r,
                    world_size: self.world_size,
                });
            }
        }
        if from == to {
            return Err(CommError::InvalidGroup {
                reason: format!("migration fence from rank {from} to itself"),
            });
        }
        if ctrl.is_dead(self.rank) {
            return Err(CommError::RankDown { rank: self.rank });
        }
        for r in [from, to] {
            if ctrl.is_dead(r) {
                return Err(CommError::RankDown { rank: r });
            }
        }
        if let Some(err) = ctrl.reconfig_error() {
            return Err(err);
        }
        if ctrl.evict_pending.load(Ordering::Acquire) {
            return Err(CommError::MigrationConflict { expert, from, to });
        }

        let started = Instant::now();
        let deadline = self.deadline.map(|d| started + d);
        let mut fence = ctrl.migration.lock();
        match fence.key {
            None => fence.key = Some((expert, from, to)),
            Some(k) if k == (expert, from, to) => {}
            Some((e, f, t)) => {
                return Err(CommError::MigrationConflict {
                    expert: e,
                    from: f,
                    to: t,
                })
            }
        }
        fence.joined[self.rank] = true;
        let joined_at = fence.generation;
        ctrl.migration_cond.notify_all();
        loop {
            if fence.generation > joined_at {
                return Ok(fence.generation);
            }
            let live: Vec<usize> = (0..self.world_size).filter(|&r| !ctrl.is_dead(r)).collect();
            // A dead endpoint can never hand over (or receive) the
            // expert weights, so the fence must fail even if every
            // survivor has joined — only the endpoints are special;
            // a dead *bystander* shrinks the live set and the fence
            // completes without it.
            let endpoint_dead = ctrl.is_dead(from) || ctrl.is_dead(to);
            if !endpoint_dead && live.iter().all(|&r| fence.joined[r]) {
                // Last joiner: complete the fence for everyone.
                fence.generation += 1;
                fence.key = None;
                fence.joined.iter_mut().for_each(|j| *j = false);
                obs::counter_add(obs::names::COLLECTIVES_MIGRATION_FENCES, 1);
                ctrl.migration_cond.notify_all();
                return Ok(fence.generation);
            }
            // Error paths below all run under the lock *after* the
            // generation check above, so a completed fence is reported
            // as success even when the error condition arose later.
            let bail = if ctrl.fenced.load(Ordering::Acquire) {
                Some(CommError::Reconfigured {
                    epoch: ctrl.epoch(),
                })
            } else if ctrl.is_dead(self.rank) {
                Some(CommError::RankDown { rank: self.rank })
            } else if endpoint_dead {
                // More specific than the eviction the death is about to
                // trigger: name the dead endpoint, not the vote.
                let rank = if ctrl.is_dead(from) { from } else { to };
                Some(CommError::RankDown { rank })
            } else if ctrl.evict_pending.load(Ordering::Acquire) {
                Some(CommError::MigrationConflict { expert, from, to })
            } else if deadline.is_some_and(|d| Instant::now() >= d) {
                let waiting_on = live.iter().copied().filter(|&r| !fence.joined[r]).collect();
                Some(CommError::Timeout {
                    op: "migration_fence",
                    waiting_on,
                    deadline: self.deadline.unwrap_or_default(),
                    elapsed: started.elapsed(),
                })
            } else {
                None
            };
            if let Some(err) = bail {
                fence.joined[self.rank] = false;
                if !fence.joined.iter().any(|&j| j) {
                    fence.key = None;
                }
                ctrl.migration_cond.notify_all();
                return Err(err);
            }
            // Bounded wait: a joiner may die (or an eviction may start)
            // without notifying this condvar, so re-check every
            // FAULT_POLL.
            let dur = match deadline {
                Some(d) => d.saturating_duration_since(Instant::now()).min(FAULT_POLL),
                None => FAULT_POLL,
            };
            let _ = ctrl.migration_cond.wait_for(&mut fence, dur);
        }
    }

    /// Completed migration-fence generations on this world.
    pub fn migration_generation(&self) -> u64 {
        self.registry.ctrl.migration.lock().generation
    }

    /// Rebinds this rank into the shrunken world a completed eviction
    /// published: a new communicator with contiguous re-numbered ranks,
    /// an empty group registry (all derived groups are rebuilt on
    /// demand) and op streams starting from zero. The collective
    /// deadline carries over.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::InvalidGroup`] before any eviction has
    /// completed and [`CommError::RankDown`] when this rank is not a
    /// survivor.
    pub fn reconfigured(&self) -> Result<Communicator> {
        let vote = self.registry.ctrl.reconfig.lock();
        let Some(next) = &vote.next else {
            return Err(CommError::InvalidGroup {
                reason: "no completed reconfiguration on this world".into(),
            });
        };
        match next.survivors.iter().position(|&r| r == self.rank) {
            Some(new_rank) => Ok(Communicator {
                rank: new_rank,
                world_size: next.survivors.len(),
                deadline: self.deadline,
                registry: Arc::clone(&next.registry),
            }),
            None => Err(CommError::RankDown { rank: self.rank }),
        }
    }

    /// The last completed reconfiguration on this world, if any:
    /// `(epoch, survivors)` with survivors as *old* global ranks in
    /// ascending order (a survivor's new rank is its index).
    pub fn last_reconfiguration(&self) -> Option<(u64, Vec<usize>)> {
        let vote = self.registry.ctrl.reconfig.lock();
        vote.next
            .as_ref()
            .map(|next| (next.epoch, next.survivors.clone()))
    }

    /// The group containing every rank in the world.
    pub fn world_group(&self) -> GroupComm {
        let ranks: Vec<usize> = (0..self.world_size).collect();
        self.subgroup(&ranks)
            // lint: allow(unwrap) — 0..world_size is non-empty,
            // duplicate-free and contains self.rank by construction.
            .expect("every rank is a member of the world group")
    }

    /// Binds this rank into the group over `ranks`.
    ///
    /// All members must call `subgroup` with an identical rank list (the
    /// SPMD convention NCCL communicator creation follows too).
    ///
    /// # Errors
    ///
    /// Returns an error when `ranks` is empty, contains duplicates or
    /// out-of-range ranks, or does not include this rank.
    pub fn subgroup(&self, ranks: &[usize]) -> Result<GroupComm> {
        if ranks.is_empty() {
            return Err(CommError::InvalidGroup {
                reason: "empty rank list".into(),
            });
        }
        let mut seen = vec![false; self.world_size];
        for &r in ranks {
            if r >= self.world_size {
                return Err(CommError::RankOutOfRange {
                    rank: r,
                    world_size: self.world_size,
                });
            }
            if seen[r] {
                return Err(CommError::InvalidGroup {
                    reason: format!("duplicate rank {r}"),
                });
            }
            seen[r] = true;
        }
        GroupComm::new(self.registry.lookup(ranks), self.rank, self.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_produces_one_communicator_per_rank() {
        let comms = CommWorld::new(4).into_communicators();
        assert_eq!(comms.len(), 4);
        for (i, c) in comms.iter().enumerate() {
            assert_eq!(c.rank(), i);
            assert_eq!(c.world_size(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_world_panics() {
        let _ = CommWorld::new(0);
    }

    #[test]
    fn subgroup_validation() {
        let comms = CommWorld::new(4).into_communicators();
        assert!(comms[0].subgroup(&[]).is_err());
        assert!(comms[0].subgroup(&[0, 0]).is_err());
        assert!(comms[0].subgroup(&[0, 9]).is_err());
        // not a member
        assert!(matches!(
            comms[3].subgroup(&[0, 1]),
            Err(CommError::NotAMember { rank: 3 })
        ));
        let g = comms[1].subgroup(&[0, 1]).unwrap();
        assert_eq!(g.group_index(), 1);
        assert_eq!(g.ranks(), &[0, 1]);
    }

    #[test]
    fn same_rank_list_binds_same_group() {
        let comms = CommWorld::new(2).into_communicators();
        let a = comms[0].subgroup(&[0, 1]).unwrap();
        let b = comms[1].subgroup(&[0, 1]).unwrap();
        // Verified indirectly: they must rendezvous. Run a barrier across
        // two threads.
        let t = std::thread::spawn(move || b.barrier());
        a.barrier().unwrap();
        t.join().unwrap().unwrap();
    }

    #[test]
    fn deadline_and_dead_flags_propagate() {
        let mut comms = CommWorld::new(2)
            .with_deadline(Duration::from_millis(250))
            .into_communicators();
        assert_eq!(comms[0].deadline(), Some(Duration::from_millis(250)));
        comms[0].set_deadline(None);
        assert_eq!(comms[0].deadline(), None);
        assert!(!comms[1].is_dead(0));
        comms[1].declare_dead(0);
        assert!(comms[0].is_dead(0), "death is world-wide state");
    }
}
