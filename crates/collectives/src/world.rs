//! World construction, sub-group registry, and world-wide fault state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::fault::FaultInjector;
use crate::group::GroupInner;
use crate::{CommError, GroupComm, Result};

/// World-wide control plane shared by every group: which ranks are dead
/// and which faults are scheduled. Lock-free reads so the rendezvous hot
/// path can consult it while holding a group lock.
#[derive(Debug)]
pub(crate) struct WorldCtrl {
    dead: Vec<AtomicBool>,
    injector: Option<FaultInjector>,
}

impl WorldCtrl {
    fn new(size: usize, injector: Option<FaultInjector>) -> Self {
        WorldCtrl {
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
            injector,
        }
    }

    pub(crate) fn is_dead(&self, rank: usize) -> bool {
        self.dead
            .get(rank)
            .is_some_and(|d| d.load(Ordering::Acquire))
    }

    pub(crate) fn mark_dead(&self, rank: usize) {
        if let Some(d) = self.dead.get(rank) {
            d.store(true, Ordering::Release);
        }
    }

    pub(crate) fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }
}

/// Shared registry mapping a rank set to its group state, so every rank
/// that requests the same sub-group binds to the same rendezvous object.
#[derive(Debug)]
struct GroupRegistry {
    groups: Mutex<HashMap<Vec<usize>, Arc<GroupInner>>>,
    ctrl: Arc<WorldCtrl>,
}

impl GroupRegistry {
    fn lookup(&self, ranks: &[usize]) -> Arc<GroupInner> {
        let mut map = self.groups.lock();
        Arc::clone(
            map.entry(ranks.to_vec())
                .or_insert_with(|| Arc::new(GroupInner::new(ranks.to_vec(), &self.ctrl))),
        )
    }
}

/// A world of `P` communicating ranks.
///
/// Construct one per simulated cluster, then hand each rank thread its
/// [`Communicator`] via [`CommWorld::into_communicators`]. Worlds are
/// configured before the split: [`CommWorld::with_deadline`] arms a
/// collective deadline on every group, [`CommWorld::with_faults`]
/// installs a [`FaultInjector`].
#[derive(Debug)]
pub struct CommWorld {
    size: usize,
    deadline: Option<Duration>,
    injector: Option<FaultInjector>,
}

impl CommWorld {
    /// Creates a world with `size` ranks, no deadline, no faults.
    ///
    /// # Panics
    ///
    /// Panics when `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world size must be positive");
        CommWorld {
            size,
            deadline: None,
            injector: None,
        }
    }

    /// Arms a deadline on every collective: a rank whose peers have not
    /// all joined (or drained) within `deadline` gets
    /// [`CommError::Timeout`] instead of blocking forever.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Installs a fault injector consulted by every collective.
    #[must_use]
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Consumes the world, producing one [`Communicator`] per rank, in
    /// rank order.
    pub fn into_communicators(self) -> Vec<Communicator> {
        let ctrl = Arc::new(WorldCtrl::new(self.size, self.injector));
        let registry = Arc::new(GroupRegistry {
            groups: Mutex::new(HashMap::new()),
            ctrl,
        });
        (0..self.size)
            .map(|rank| Communicator {
                rank,
                world_size: self.size,
                deadline: self.deadline,
                registry: Arc::clone(&registry),
            })
            .collect()
    }
}

/// One rank's handle into a [`CommWorld`].
///
/// Cheap to clone; clones refer to the same rank.
#[derive(Debug, Clone)]
pub struct Communicator {
    rank: usize,
    world_size: usize,
    deadline: Option<Duration>,
    registry: Arc<GroupRegistry>,
}

impl Communicator {
    /// This rank's global rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// The collective deadline groups created by this communicator
    /// inherit (`None` = wait forever).
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Overrides the inherited collective deadline for groups created
    /// *after* this call.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// Whether `rank` is known to be dead (killed by fault injection or
    /// declared via [`Communicator::declare_dead`]).
    pub fn is_dead(&self, rank: usize) -> bool {
        self.registry.ctrl.is_dead(rank)
    }

    /// Declares `rank` dead world-wide. Every in-flight and future
    /// collective on a group containing `rank` fails with
    /// [`CommError::RankDown`] instead of waiting for it.
    pub fn declare_dead(&self, rank: usize) {
        self.registry.ctrl.mark_dead(rank);
    }

    /// The group containing every rank in the world.
    pub fn world_group(&self) -> GroupComm {
        let ranks: Vec<usize> = (0..self.world_size).collect();
        self.subgroup(&ranks)
            .expect("every rank is a member of the world group")
    }

    /// Binds this rank into the group over `ranks`.
    ///
    /// All members must call `subgroup` with an identical rank list (the
    /// SPMD convention NCCL communicator creation follows too).
    ///
    /// # Errors
    ///
    /// Returns an error when `ranks` is empty, contains duplicates or
    /// out-of-range ranks, or does not include this rank.
    pub fn subgroup(&self, ranks: &[usize]) -> Result<GroupComm> {
        if ranks.is_empty() {
            return Err(CommError::InvalidGroup {
                reason: "empty rank list".into(),
            });
        }
        let mut seen = vec![false; self.world_size];
        for &r in ranks {
            if r >= self.world_size {
                return Err(CommError::RankOutOfRange {
                    rank: r,
                    world_size: self.world_size,
                });
            }
            if seen[r] {
                return Err(CommError::InvalidGroup {
                    reason: format!("duplicate rank {r}"),
                });
            }
            seen[r] = true;
        }
        GroupComm::new(self.registry.lookup(ranks), self.rank, self.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_produces_one_communicator_per_rank() {
        let comms = CommWorld::new(4).into_communicators();
        assert_eq!(comms.len(), 4);
        for (i, c) in comms.iter().enumerate() {
            assert_eq!(c.rank(), i);
            assert_eq!(c.world_size(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_world_panics() {
        let _ = CommWorld::new(0);
    }

    #[test]
    fn subgroup_validation() {
        let comms = CommWorld::new(4).into_communicators();
        assert!(comms[0].subgroup(&[]).is_err());
        assert!(comms[0].subgroup(&[0, 0]).is_err());
        assert!(comms[0].subgroup(&[0, 9]).is_err());
        // not a member
        assert!(matches!(
            comms[3].subgroup(&[0, 1]),
            Err(CommError::NotAMember { rank: 3 })
        ));
        let g = comms[1].subgroup(&[0, 1]).unwrap();
        assert_eq!(g.group_index(), 1);
        assert_eq!(g.ranks(), &[0, 1]);
    }

    #[test]
    fn same_rank_list_binds_same_group() {
        let comms = CommWorld::new(2).into_communicators();
        let a = comms[0].subgroup(&[0, 1]).unwrap();
        let b = comms[1].subgroup(&[0, 1]).unwrap();
        // Verified indirectly: they must rendezvous. Run a barrier across
        // two threads.
        let t = std::thread::spawn(move || b.barrier());
        a.barrier().unwrap();
        t.join().unwrap().unwrap();
    }

    #[test]
    fn deadline_and_dead_flags_propagate() {
        let mut comms = CommWorld::new(2)
            .with_deadline(Duration::from_millis(250))
            .into_communicators();
        assert_eq!(comms[0].deadline(), Some(Duration::from_millis(250)));
        comms[0].set_deadline(None);
        assert_eq!(comms[0].deadline(), None);
        assert!(!comms[1].is_dead(0));
        comms[1].declare_dead(0);
        assert!(comms[0].is_dead(0), "death is world-wide state");
    }
}
