//! Hybrid-parallel process-group topology (DP + MP + EP + ESP).
//!
//! Training a large MoE model uses four interacting parallelisms
//! (paper §2.2): data parallelism over mini-batches, model parallelism
//! over attention shards, expert parallelism over experts, and
//! expert-sharding parallelism over the parameters of each expert. Each
//! parallelism induces a partition of the global ranks into groups; this
//! module constructs those partitions.
//!
//! The paper's target deployment (§4) aligns the MP and ESP groups with
//! the GPUs of one node — making MP/ESP traffic intra-node (NVLink) while
//! AlltoAll (EP) and Gradient-AllReduce (DP) traffic crosses nodes. That
//! alignment is what [`HybridTopology::is_node_aligned`] checks and what
//! the FSMoE schedule exploits.

use crate::{CommError, Result};

/// Sizes of the four parallel groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelDims {
    /// Workers per data-parallel group (`N_DP`).
    pub dp: usize,
    /// Workers per model-parallel group (`N_MP`).
    pub mp: usize,
    /// Workers per expert-parallel group (`N_EP`).
    pub ep: usize,
    /// Workers per expert-sharding group (`N_ESP`).
    pub esp: usize,
}

/// A cluster of `nodes × gpus_per_node` ranks with a hybrid-parallel
/// group layout.
///
/// Rank numbering is row-major: global rank = `node · gpus_per_node +
/// local`. MP and ESP groups are contiguous rank blocks (within-node when
/// aligned); EP and DP groups are strided across those blocks
/// (across-node when aligned) — matching Fig. 2 of the paper.
///
/// ```
/// use collectives::{HybridTopology, ParallelDims};
///
/// // Fig. 2 of the paper: 4 GPUs, all four dims = 2.
/// let topo = HybridTopology::new(2, 2, ParallelDims { dp: 2, mp: 2, ep: 2, esp: 2 }).unwrap();
/// assert_eq!(topo.mp_group(0), vec![0, 1]);
/// assert_eq!(topo.ep_group(0), vec![0, 2]);
/// assert!(topo.is_node_aligned());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridTopology {
    nodes: usize,
    gpus_per_node: usize,
    dims: ParallelDims,
}

impl HybridTopology {
    /// Builds a topology and validates that the dims tile the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::BadParallelism`] when
    /// `dp·mp ≠ P`, `ep·esp ≠ P`, or MP/ESP groups would straddle node
    /// boundaries unevenly (group size must divide or be divided by
    /// `gpus_per_node`).
    pub fn new(nodes: usize, gpus_per_node: usize, dims: ParallelDims) -> Result<Self> {
        let p = nodes * gpus_per_node;
        if p == 0 {
            return Err(CommError::BadParallelism {
                reason: "cluster has zero ranks".into(),
            });
        }
        if dims.dp * dims.mp != p {
            return Err(CommError::BadParallelism {
                reason: format!("dp({}) x mp({}) != P({p})", dims.dp, dims.mp),
            });
        }
        if dims.ep * dims.esp != p {
            return Err(CommError::BadParallelism {
                reason: format!("ep({}) x esp({}) != P({p})", dims.ep, dims.esp),
            });
        }
        for (name, size) in [("mp", dims.mp), ("esp", dims.esp)] {
            if size == 0 || (!gpus_per_node.is_multiple_of(size) && size % gpus_per_node != 0) {
                return Err(CommError::BadParallelism {
                    reason: format!(
                        "{name} group size {size} incompatible with {gpus_per_node} gpus/node"
                    ),
                });
            }
        }
        Ok(HybridTopology {
            nodes,
            gpus_per_node,
            dims,
        })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// GPUs per node.
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// Total ranks.
    pub fn world_size(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// The configured parallel dims.
    pub fn dims(&self) -> ParallelDims {
        self.dims
    }

    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_node
    }

    /// Local GPU index of `rank` within its node.
    pub fn local_of(&self, rank: usize) -> usize {
        rank % self.gpus_per_node
    }

    /// `true` when MP and ESP both equal the node width, the paper's
    /// scenario where MP/ESP traffic is intra-node and EP/DP traffic is
    /// inter-node (§4).
    pub fn is_node_aligned(&self) -> bool {
        self.dims.mp == self.gpus_per_node && self.dims.esp == self.gpus_per_node
    }

    /// Ranks of the model-parallel group containing `rank` (contiguous
    /// block of `N_MP`).
    pub fn mp_group(&self, rank: usize) -> Vec<usize> {
        contiguous_group(rank, self.dims.mp)
    }

    /// Ranks of the expert-sharding group containing `rank` (contiguous
    /// block of `N_ESP`).
    pub fn esp_group(&self, rank: usize) -> Vec<usize> {
        contiguous_group(rank, self.dims.esp)
    }

    /// Ranks of the expert-parallel group containing `rank` (stride
    /// `N_ESP` across ESP blocks).
    pub fn ep_group(&self, rank: usize) -> Vec<usize> {
        strided_group(rank, self.dims.esp, self.dims.ep)
    }

    /// Ranks of the data-parallel group containing `rank` (stride `N_MP`
    /// across MP blocks) — the group Gradient-AllReduce runs over.
    pub fn dp_group(&self, rank: usize) -> Vec<usize> {
        strided_group(rank, self.dims.mp, self.dims.dp)
    }

    /// `true` when every member of `ranks` lives on one node, i.e. the
    /// group's collectives are intra-node traffic.
    pub fn is_intra_node(&self, ranks: &[usize]) -> bool {
        match ranks.first() {
            None => true,
            Some(&r0) => {
                let node = self.node_of(r0);
                ranks.iter().all(|&r| self.node_of(r) == node)
            }
        }
    }
}

/// Contiguous block of `size` ranks containing `rank`.
fn contiguous_group(rank: usize, size: usize) -> Vec<usize> {
    let start = rank - rank % size;
    (start..start + size).collect()
}

/// Group formed by striding: members share `rank % stride` and span
/// `count` consecutive blocks.
fn strided_group(rank: usize, stride: usize, count: usize) -> Vec<usize> {
    let offset = rank % stride;
    let block = (rank / stride) - (rank / stride) % count;
    (0..count).map(|j| (block + j) * stride + offset).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_fig2() -> HybridTopology {
        HybridTopology::new(
            2,
            2,
            ParallelDims {
                dp: 2,
                mp: 2,
                ep: 2,
                esp: 2,
            },
        )
        .unwrap()
    }

    #[test]
    fn fig2_groups_match_paper() {
        let t = paper_fig2();
        // GPU1..4 in the paper are ranks 0..3; node 0 = {0,1}, node 1 = {2,3}
        assert_eq!(t.mp_group(0), vec![0, 1]);
        assert_eq!(t.mp_group(3), vec![2, 3]);
        assert_eq!(t.esp_group(1), vec![0, 1]);
        // experts are distributed to (GPU1, GPU3) and (GPU2, GPU4)
        assert_eq!(t.ep_group(0), vec![0, 2]);
        assert_eq!(t.ep_group(1), vec![1, 3]);
        assert_eq!(t.dp_group(2), vec![0, 2]);
        assert!(t.is_node_aligned());
    }

    #[test]
    fn groups_partition_the_world() {
        let t = HybridTopology::new(
            4,
            4,
            ParallelDims {
                dp: 4,
                mp: 4,
                ep: 4,
                esp: 4,
            },
        )
        .unwrap();
        for group_fn in [
            HybridTopology::mp_group,
            HybridTopology::esp_group,
            HybridTopology::ep_group,
            HybridTopology::dp_group,
        ] {
            let mut seen = vec![0usize; t.world_size()];
            for r in 0..t.world_size() {
                let g = group_fn(&t, r);
                assert!(g.contains(&r), "rank {r} must be in its own group");
                for &m in &g {
                    seen[m] += 1;
                }
            }
            // each rank appears exactly group_size times (once per member)
            for (r, &count) in seen.iter().enumerate() {
                assert_eq!(count, 4, "rank {r}");
            }
        }
    }

    #[test]
    fn alignment_classifies_traffic() {
        let t = HybridTopology::new(
            2,
            4,
            ParallelDims {
                dp: 2,
                mp: 4,
                ep: 2,
                esp: 4,
            },
        )
        .unwrap();
        assert!(t.is_node_aligned());
        // MP/ESP groups intra-node, EP/DP groups inter-node
        assert!(t.is_intra_node(&t.mp_group(5)));
        assert!(t.is_intra_node(&t.esp_group(5)));
        assert!(!t.is_intra_node(&t.ep_group(5)));
        assert!(!t.is_intra_node(&t.dp_group(5)));
    }

    #[test]
    fn unaligned_topology_allowed_but_flagged() {
        let t = HybridTopology::new(
            2,
            4,
            ParallelDims {
                dp: 4,
                mp: 2,
                ep: 4,
                esp: 2,
            },
        )
        .unwrap();
        assert!(!t.is_node_aligned());
        assert!(t.is_intra_node(&t.mp_group(0)));
    }

    #[test]
    fn rejects_bad_dims() {
        assert!(HybridTopology::new(
            2,
            2,
            ParallelDims {
                dp: 3,
                mp: 2,
                ep: 2,
                esp: 2
            }
        )
        .is_err());
        assert!(HybridTopology::new(
            2,
            2,
            ParallelDims {
                dp: 2,
                mp: 2,
                ep: 3,
                esp: 2
            }
        )
        .is_err());
        assert!(HybridTopology::new(
            0,
            4,
            ParallelDims {
                dp: 1,
                mp: 1,
                ep: 1,
                esp: 1
            }
        )
        .is_err());
        // esp=3 straddles 4-gpu nodes unevenly
        assert!(HybridTopology::new(
            3,
            4,
            ParallelDims {
                dp: 3,
                mp: 4,
                ep: 4,
                esp: 3
            }
        )
        .is_err());
    }

    #[test]
    fn node_local_math() {
        let t = HybridTopology::new(
            3,
            4,
            ParallelDims {
                dp: 3,
                mp: 4,
                ep: 3,
                esp: 4,
            },
        )
        .unwrap();
        assert_eq!(t.node_of(7), 1);
        assert_eq!(t.local_of(7), 3);
        assert_eq!(t.world_size(), 12);
    }
}
