//! The adaptive deadline controller: per-op collective budgets derived
//! from profiler α–β fits and observed latency, replacing one static
//! world-wide deadline.
//!
//! A fixed deadline must be generous enough for the slowest op on the
//! slowest day, which makes it useless for detecting *gray* failures: a
//! rank limping at 0.5× speed stays comfortably inside a 5 s budget
//! forever. The controller instead derives each op's budget from what
//! the op *should* cost — `α + β·bytes` from the profiler's fitted
//! model — and what it *has* cost recently (a sliding-window p99),
//! takes the larger, multiplies by a slack factor, and clamps to a
//! floor/ceiling. Budgets track reality tightly enough that a brownout
//! shows up as health-score decay (`models::health`) long before it
//! would trip even these deadlines, while a genuinely dead rank still
//! trips them fast.
//!
//! Every quantity is a pure function of the configuration, the fits and
//! the observed samples, all of which are identical across ranks in an
//! SPMD program — so every rank derives the same budget for the same op
//! and no rank times out while a peer keeps waiting. This file is the
//! one place in `collectives/src` allowed to hold deadline literals
//! (the analyzer's `deadline-literals` rule exempts it): every other
//! op budget must flow through [`DeadlineController::budget`].

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// Clamps and slack for [`DeadlineController`] budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineConfig {
    /// No budget is ever tighter than this, however fast the fits say
    /// the op should be — scheduler noise needs headroom.
    pub floor: Duration,
    /// No budget is ever looser than this; also the budget for an op
    /// with no fit and no samples yet.
    pub ceiling: Duration,
    /// Multiplier over the expected cost (`max(model, p99)`): how many
    /// times slower than expected an op may run before it is declared
    /// timed out.
    pub slack: f64,
    /// Sliding-window length for per-op observed samples.
    pub window: usize,
}

impl Default for DeadlineConfig {
    fn default() -> Self {
        DeadlineConfig {
            floor: Duration::from_millis(50),
            ceiling: Duration::from_secs(5),
            slack: 4.0,
            window: 64,
        }
    }
}

#[derive(Debug, Default)]
struct OpStats {
    /// Completed-op durations, µs, most recent last (window-capped).
    samples_us: VecDeque<u64>,
    /// Profiler fit for this op: `(alpha_ms, beta_ms_per_byte)`.
    fit: Option<(f64, f64)>,
}

impl OpStats {
    /// p99 of the windowed samples, µs (≈ max for short windows): index
    /// `ceil(0.99·n) - 1` of the sorted window.
    fn p99_us(&self) -> Option<u64> {
        if self.samples_us.is_empty() {
            return None;
        }
        let mut sorted: Vec<u64> = self.samples_us.iter().copied().collect();
        sorted.sort_unstable();
        let n = sorted.len();
        let idx = ((n as f64 * 0.99).ceil() as usize).clamp(1, n) - 1;
        Some(sorted[idx])
    }
}

/// Derives per-op collective budgets from α–β fits and observed p99.
///
/// Install one on a world via
/// [`crate::CommWorld::with_adaptive_deadlines`]; every collective then
/// asks it for a budget sized to that op's name and payload instead of
/// using the world's static deadline. The controller is shared by all
/// ranks (it lives in the world control plane) and survives
/// reconfiguration — an eviction carries it into the shrunken world, so
/// budgets stay warm across membership changes.
#[derive(Debug, Default)]
pub struct DeadlineController {
    config: DeadlineConfig,
    /// Per-op stats; a `BTreeMap` so any future enumeration (dumps,
    /// debugging) is deterministic (DESIGN.md §13).
    ops: Mutex<BTreeMap<String, OpStats>>,
}

impl DeadlineController {
    /// A controller with the given clamps; no fits, no samples.
    pub fn new(config: DeadlineConfig) -> Self {
        DeadlineController {
            config,
            ops: Mutex::new(BTreeMap::new()),
        }
    }

    /// The controller wrapped for installation on a world.
    pub fn shared(config: DeadlineConfig) -> Arc<Self> {
        Arc::new(DeadlineController::new(config))
    }

    /// The configured clamps.
    pub fn config(&self) -> DeadlineConfig {
        self.config
    }

    /// Installs the profiler's α–β fit for `op` (e.g. a span name like
    /// `"all_to_all"`): `alpha_ms` fixed cost plus `beta_ms_per_byte`
    /// marginal cost, as `profiler::profile_collective` fits them.
    pub fn set_fit(&self, op: &str, alpha_ms: f64, beta_ms_per_byte: f64) {
        let mut ops = self.ops.lock();
        ops.entry(op.to_string()).or_default().fit = Some((alpha_ms, beta_ms_per_byte));
    }

    /// Records a completed op's duration into the sliding window.
    pub fn observe(&self, op: &str, elapsed: Duration) {
        let window = self.config.window.max(1);
        let mut ops = self.ops.lock();
        let stats = ops.entry(op.to_string()).or_default();
        stats.samples_us.push_back(elapsed.as_micros() as u64);
        while stats.samples_us.len() > window {
            stats.samples_us.pop_front();
        }
    }

    /// The current p99 of observed samples for `op`, in µs.
    pub fn p99_us(&self, op: &str) -> Option<u64> {
        self.ops.lock().get(op).and_then(OpStats::p99_us)
    }

    /// The budget for one `op` instance moving `bytes` per rank:
    /// `clamp(slack × max(model_ms, p99_ms), floor, ceiling)`, or the
    /// ceiling when the op has neither a fit nor samples yet.
    ///
    /// Deterministic in the controller's state — ranks with identical
    /// fits and identical observed samples derive identical budgets.
    pub fn budget(&self, op: &str, bytes: usize) -> Duration {
        let ops = self.ops.lock();
        let Some(stats) = ops.get(op) else {
            return self.config.ceiling;
        };
        let model_ms = stats
            .fit
            .map(|(alpha, beta)| alpha + beta * bytes as f64)
            .unwrap_or(0.0);
        let p99_ms = stats.p99_us().map(|us| us as f64 / 1e3).unwrap_or(0.0);
        let expected_ms = model_ms.max(p99_ms);
        if expected_ms <= 0.0 {
            return self.config.ceiling;
        }
        let budget = Duration::from_secs_f64((expected_ms * self.config.slack.max(1.0)) / 1e3);
        budget.clamp(self.config.floor, self.config.ceiling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeadlineConfig {
        DeadlineConfig {
            floor: Duration::from_millis(10),
            ceiling: Duration::from_secs(2),
            slack: 4.0,
            window: 8,
        }
    }

    #[test]
    fn unknown_op_gets_the_ceiling() {
        let ctl = DeadlineController::new(cfg());
        assert_eq!(ctl.budget("all_to_all", 1 << 20), Duration::from_secs(2));
    }

    #[test]
    fn model_budget_scales_with_bytes_and_slack() {
        let ctl = DeadlineController::new(cfg());
        // 1 ms fixed + 1 ms per KiB.
        ctl.set_fit("all_to_all", 1.0, 1.0 / 1024.0);
        // 9 KiB → 10 ms expected → 40 ms with 4× slack.
        let b = ctl.budget("all_to_all", 9 * 1024);
        assert_eq!(b, Duration::from_millis(40));
        // Bigger payloads get bigger budgets.
        assert!(ctl.budget("all_to_all", 1 << 20) > b);
    }

    #[test]
    fn budget_clamps_to_floor_and_ceiling() {
        let ctl = DeadlineController::new(cfg());
        ctl.set_fit("barrier", 0.001, 0.0);
        assert_eq!(
            ctl.budget("barrier", 0),
            Duration::from_millis(10),
            "tiny expected cost clamps to the floor"
        );
        ctl.set_fit("all_gather", 10_000.0, 0.0);
        assert_eq!(
            ctl.budget("all_gather", 0),
            Duration::from_secs(2),
            "huge expected cost clamps to the ceiling"
        );
    }

    #[test]
    fn observed_p99_takes_over_when_it_exceeds_the_model() {
        let ctl = DeadlineController::new(cfg());
        ctl.set_fit("all_reduce", 1.0, 0.0);
        for _ in 0..7 {
            ctl.observe("all_reduce", Duration::from_millis(5));
        }
        // Model (1 ms) < p99 (5 ms): budget = 4 × 5 ms.
        assert_eq!(ctl.budget("all_reduce", 0), Duration::from_millis(20));
    }

    #[test]
    fn latency_spike_widens_the_budget_then_ages_out() {
        let ctl = DeadlineController::new(cfg());
        for _ in 0..8 {
            ctl.observe("all_to_all", Duration::from_millis(5));
        }
        let steady = ctl.budget("all_to_all", 0);
        assert_eq!(steady, Duration::from_millis(20));
        // One spike lands in the window: p99 ≈ max, so the budget
        // widens instead of killing the slow op.
        ctl.observe("all_to_all", Duration::from_millis(100));
        assert_eq!(ctl.budget("all_to_all", 0), Duration::from_millis(400));
        // The window slides: 8 more steady samples evict the spike and
        // the budget re-tightens.
        for _ in 0..8 {
            ctl.observe("all_to_all", Duration::from_millis(5));
        }
        assert_eq!(ctl.budget("all_to_all", 0), steady);
    }

    #[test]
    fn sustained_brownout_raises_p99_but_stays_under_slack() {
        // A 2× sustained slowdown doubles the budget — the op keeps
        // completing (detection is the health monitor's job, not the
        // deadline's), yet the budget never runs away past slack × p99.
        let ctl = DeadlineController::new(cfg());
        for _ in 0..8 {
            ctl.observe("all_to_all", Duration::from_millis(10));
        }
        for _ in 0..8 {
            ctl.observe("all_to_all", Duration::from_millis(20));
        }
        assert_eq!(ctl.budget("all_to_all", 0), Duration::from_millis(80));
    }

    #[test]
    fn p99_tracks_the_window_tail() {
        let ctl = DeadlineController::new(cfg());
        assert_eq!(ctl.p99_us("x"), None);
        for ms in [1u64, 2, 3, 4] {
            ctl.observe("x", Duration::from_millis(ms));
        }
        assert_eq!(ctl.p99_us("x"), Some(4_000));
    }

    #[test]
    fn ops_are_independent() {
        let ctl = DeadlineController::new(cfg());
        ctl.set_fit("all_to_all", 100.0, 0.0);
        assert_eq!(ctl.budget("all_to_all", 0), Duration::from_millis(400));
        assert_eq!(
            ctl.budget("barrier", 0),
            Duration::from_secs(2),
            "other ops keep the ceiling until they have data"
        );
    }
}
