//! Deterministic fault injection for the collectives runtime.
//!
//! A [`FaultInjector`] carries a schedule of fault events keyed by
//! `(rank, op index)`, where the op index counts the collectives a rank
//! has *entered* (0-based, across all groups). Every collective consults
//! the injector on entry, so any AlltoAll, AllReduce, AllGather,
//! ReduceScatter, Broadcast or Barrier in the system can be attacked:
//!
//! * [`FaultAction::Kill`] — the rank is marked dead; its call (and all
//!   its later calls) return [`CommError::RankDown`], and peers waiting
//!   on it error out instead of hanging;
//! * [`FaultAction::Delay`] — the rank joins the collective late
//!   (straggler), exercising the deadline machinery;
//! * [`FaultAction::DropPayload`] — the rank's contribution is replaced
//!   with zeros, modelling lost/zero-filled traffic (the degradation
//!   mode `fsmoe::dist` accounts for as token drops).
//!
//! Schedules are either built explicitly ([`FaultInjector::kill`] etc.)
//! or drawn deterministically from a seed
//! ([`FaultInjector::single_fault_from_seed`]), so chaos tests
//! reproduce exactly.

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::Mutex;

#[allow(unused_imports)] // doc links
use crate::CommError;

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The rank dies at this op: marked dead world-wide, call errors.
    Kill,
    /// The rank sleeps this long before joining the collective.
    Delay(Duration),
    /// The rank's payload is zero-filled before deposit.
    DropPayload,
}

/// A deterministic, seedable schedule of fault events.
#[derive(Debug, Default)]
pub struct FaultInjector {
    schedule: HashMap<(usize, usize), FaultAction>,
    /// Per-rank count of collectives entered so far.
    counters: Mutex<HashMap<usize, usize>>,
}

impl FaultInjector {
    /// An empty schedule (no faults).
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Schedules `rank` to die when it enters its `at_op`-th collective.
    #[must_use]
    pub fn kill(mut self, rank: usize, at_op: usize) -> Self {
        self.schedule.insert((rank, at_op), FaultAction::Kill);
        self
    }

    /// Schedules `rank` to straggle by `delay` on its `at_op`-th
    /// collective.
    #[must_use]
    pub fn delay(mut self, rank: usize, at_op: usize, delay: Duration) -> Self {
        self.schedule
            .insert((rank, at_op), FaultAction::Delay(delay));
        self
    }

    /// Schedules `rank`'s payload to be zero-filled on its `at_op`-th
    /// collective.
    #[must_use]
    pub fn drop_payload(mut self, rank: usize, at_op: usize) -> Self {
        self.schedule
            .insert((rank, at_op), FaultAction::DropPayload);
        self
    }

    /// A deterministic random *single-fault* schedule: one rank, one op
    /// index in `0..max_op`, one action kind. Delays are drawn in
    /// `1..=max_delay_ms` milliseconds. The same seed always yields the
    /// same schedule — the contract chaos tests rely on to reproduce.
    pub fn single_fault_from_seed(
        seed: u64,
        world_size: usize,
        max_op: usize,
        max_delay_ms: u64,
    ) -> Self {
        let mut state = seed;
        let mut next = move || splitmix64(&mut state);
        let rank = (next() % world_size.max(1) as u64) as usize;
        let at_op = (next() % max_op.max(1) as u64) as usize;
        let action = match next() % 3 {
            0 => FaultAction::Kill,
            1 => FaultAction::Delay(Duration::from_millis(1 + next() % max_delay_ms.max(1))),
            _ => FaultAction::DropPayload,
        };
        let mut inj = FaultInjector::new();
        inj.schedule.insert((rank, at_op), action);
        inj
    }

    /// The scheduled events, in no particular order.
    pub fn events(&self) -> Vec<(usize, usize, FaultAction)> {
        self.schedule
            .iter()
            .map(|(&(rank, op), &action)| (rank, op, action))
            .collect()
    }

    /// Number of collectives `rank` has entered so far.
    pub fn ops_seen(&self, rank: usize) -> usize {
        self.counters.lock().get(&rank).copied().unwrap_or(0)
    }

    /// Called by the runtime when `rank` enters a collective: advances
    /// the rank's op counter and returns the fault (if any) scheduled
    /// for that op.
    pub(crate) fn on_collective(&self, rank: usize) -> Option<FaultAction> {
        let mut counters = self.counters.lock();
        let op = counters.entry(rank).or_insert(0);
        let current = *op;
        *op += 1;
        drop(counters);
        self.schedule.get(&(rank, current)).copied()
    }
}

/// SplitMix64 — the same generator family the shims use, kept local so
/// the library crate needs no rand dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_schedule_fires_at_op_index() {
        let inj = FaultInjector::new()
            .kill(1, 2)
            .delay(0, 0, Duration::from_millis(5));
        assert_eq!(
            inj.on_collective(0),
            Some(FaultAction::Delay(Duration::from_millis(5)))
        );
        assert_eq!(inj.on_collective(0), None);
        assert_eq!(inj.on_collective(1), None); // op 0
        assert_eq!(inj.on_collective(1), None); // op 1
        assert_eq!(inj.on_collective(1), Some(FaultAction::Kill)); // op 2
        assert_eq!(inj.ops_seen(1), 3);
        assert_eq!(inj.ops_seen(7), 0);
    }

    #[test]
    fn seeded_schedule_is_deterministic() {
        let a = FaultInjector::single_fault_from_seed(42, 8, 4, 100);
        let b = FaultInjector::single_fault_from_seed(42, 8, 4, 100);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 1);
        let (rank, op, _) = a.events()[0];
        assert!(rank < 8);
        assert!(op < 4);
    }

    #[test]
    fn seeds_cover_all_action_kinds() {
        let mut kinds = [false; 3];
        for seed in 0..64 {
            let inj = FaultInjector::single_fault_from_seed(seed, 4, 3, 50);
            match inj.events()[0].2 {
                FaultAction::Kill => kinds[0] = true,
                FaultAction::Delay(d) => {
                    assert!(d >= Duration::from_millis(1));
                    assert!(d <= Duration::from_millis(50));
                    kinds[1] = true;
                }
                FaultAction::DropPayload => kinds[2] = true,
            }
        }
        assert!(kinds.iter().all(|&k| k), "kinds seen: {kinds:?}");
    }
}
