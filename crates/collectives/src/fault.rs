//! Deterministic fault injection for the collectives runtime.
//!
//! A [`FaultInjector`] carries a schedule of fault events keyed by
//! `(rank, op index)`, where the op index counts the collectives a rank
//! has *entered* (0-based, across all groups). Every collective consults
//! the injector on entry, so any AlltoAll, AllReduce, AllGather,
//! ReduceScatter, Broadcast or Barrier in the system can be attacked:
//!
//! * [`FaultAction::Kill`] — the rank is marked dead; its call (and all
//!   its later calls) return [`CommError::RankDown`], and peers waiting
//!   on it error out instead of hanging;
//! * [`FaultAction::Delay`] — the rank joins the collective late
//!   (straggler), exercising the deadline machinery;
//! * [`FaultAction::DropPayload`] — the rank's contribution is replaced
//!   with zeros, modelling lost/zero-filled traffic (the degradation
//!   mode `fsmoe::dist` accounts for as token drops).
//!
//! Beyond one-shot scheduled faults, a **brownout** ([`Brownout`],
//! [`FaultInjector::brownout`]) models a *gray failure*: a rank that is
//! alive and correct but persistently slow. From `from_op` onward every
//! collective the rank enters is delayed by a seeded, jittered slowdown
//! (plus an intermittent stutter), so the rank limps forever without
//! tripping any single generous timeout — the failure mode the health
//! scoring in `models::health` exists to catch.
//!
//! Schedules are either built explicitly ([`FaultInjector::kill`] etc.)
//! or drawn deterministically from a seed
//! ([`FaultInjector::single_fault_from_seed`]), so chaos tests
//! reproduce exactly.

use std::collections::BTreeMap;
use std::time::Duration;

use parking_lot::Mutex;

#[allow(unused_imports)] // doc links
use crate::CommError;

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The rank dies at this op: marked dead world-wide, call errors.
    Kill,
    /// The rank sleeps this long before joining the collective.
    Delay(Duration),
    /// The rank's payload is zero-filled before deposit.
    DropPayload,
}

/// A persistent per-rank slowdown: the gray-failure ("brownout") fault
/// mode. Unlike a one-shot [`FaultAction::Delay`], a brownout applies to
/// *every* collective the rank enters from `from_op` onward, with a
/// seeded jitter so consecutive ops do not straggle identically, plus an
/// occasional larger stutter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Brownout {
    /// Mean added latency per collective entry.
    pub mean_delay: Duration,
    /// Jitter as a percentage of `mean_delay`: each op's delay is drawn
    /// uniformly from `mean_delay * [1 - j/100, 1 + j/100]`. Clamped to
    /// at most 100.
    pub jitter_pct: u32,
    /// Every `stutter_every`-th browned-out op additionally sleeps
    /// `stutter_delay` (0 disables stutter).
    pub stutter_every: usize,
    /// Extra latency of the intermittent stutter.
    pub stutter_delay: Duration,
    /// First op index (per the rank's own op counter) the brownout
    /// affects; earlier ops run at full speed.
    pub from_op: usize,
}

impl Brownout {
    /// A steady slowdown with moderate jitter and no stutter, active
    /// from the rank's first collective.
    pub fn steady(mean_delay: Duration) -> Self {
        Brownout {
            mean_delay,
            jitter_pct: 20,
            stutter_every: 0,
            stutter_delay: Duration::ZERO,
            from_op: 0,
        }
    }

    /// The jittered delay this brownout imposes on the rank's
    /// `op_index`-th collective (`None` before `from_op`). Pure in its
    /// inputs, so the same `(seed, rank, op_index)` always produces the
    /// same delay — the determinism chaos soaks rely on.
    pub fn delay_for(&self, seed: u64, rank: usize, op_index: usize) -> Option<Duration> {
        if op_index < self.from_op {
            return None;
        }
        let mut state = seed ^ (rank as u64).rotate_left(32) ^ op_index as u64;
        let draw = splitmix64(&mut state);
        let jitter = self.jitter_pct.min(100) as u64;
        // Scale factor in [100 - j, 100 + j] percent.
        let pct = 100 - jitter + (draw % (2 * jitter + 1));
        let base_us = self.mean_delay.as_micros() as u64;
        // lint: allow(deadline-literals) — jittered fault magnitude, not an op budget
        let mut delay = Duration::from_micros(base_us.saturating_mul(pct) / 100);
        if self.stutter_every > 0 && (op_index - self.from_op).is_multiple_of(self.stutter_every) {
            delay += self.stutter_delay;
        }
        Some(delay)
    }
}

/// A deterministic, seedable schedule of fault events.
///
/// Stored in `BTreeMap`s: the injector feeds chaos tests that must
/// replay identically from a seed, so even enumeration order is kept
/// deterministic (DESIGN.md §13).
#[derive(Debug, Default)]
pub struct FaultInjector {
    schedule: BTreeMap<(usize, usize), FaultAction>,
    /// Persistent per-rank slowdowns, keyed by rank, with their jitter
    /// seeds.
    brownouts: BTreeMap<usize, (Brownout, u64)>,
    /// Per-rank count of collectives entered so far.
    counters: Mutex<BTreeMap<usize, usize>>,
}

impl FaultInjector {
    /// An empty schedule (no faults).
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Schedules `rank` to die when it enters its `at_op`-th collective.
    #[must_use]
    pub fn kill(mut self, rank: usize, at_op: usize) -> Self {
        self.schedule.insert((rank, at_op), FaultAction::Kill);
        self
    }

    /// Schedules `rank` to straggle by `delay` on its `at_op`-th
    /// collective.
    #[must_use]
    pub fn delay(mut self, rank: usize, at_op: usize, delay: Duration) -> Self {
        self.schedule
            .insert((rank, at_op), FaultAction::Delay(delay));
        self
    }

    /// Schedules `rank`'s payload to be zero-filled on its `at_op`-th
    /// collective.
    #[must_use]
    pub fn drop_payload(mut self, rank: usize, at_op: usize) -> Self {
        self.schedule
            .insert((rank, at_op), FaultAction::DropPayload);
        self
    }

    /// Puts `rank` into a persistent brownout: from `spec.from_op`
    /// onward, every collective it enters is delayed by a seeded,
    /// jittered slowdown. One-shot scheduled faults still take
    /// precedence on their exact op index.
    #[must_use]
    pub fn brownout(mut self, rank: usize, spec: Brownout, seed: u64) -> Self {
        self.brownouts.insert(rank, (spec, seed));
        self
    }

    /// The configured brownouts as `(rank, spec, seed)`, sorted by rank
    /// (the map iterates in key order).
    pub fn brownouts(&self) -> Vec<(usize, Brownout, u64)> {
        self.brownouts
            .iter()
            .map(|(&rank, &(spec, seed))| (rank, spec, seed))
            .collect()
    }

    /// A deterministic random *single-fault* schedule: one rank, one op
    /// index in `0..max_op`, one fault kind out of four — kill, delay,
    /// payload drop, or a persistent brownout starting at that op.
    /// Delays are drawn in `1..=max_delay_ms` milliseconds; brownout
    /// mean delays in `1..=max(max_delay_ms / 4, 1)` so limping stays
    /// well inside the per-op deadline (a brownout is a slowdown the
    /// deadline machinery must *not* catch). The same seed always yields
    /// the same schedule — the contract chaos tests rely on to
    /// reproduce.
    pub fn single_fault_from_seed(
        seed: u64,
        world_size: usize,
        max_op: usize,
        max_delay_ms: u64,
    ) -> Self {
        let mut state = seed;
        let mut next = move || splitmix64(&mut state);
        let rank = (next() % world_size.max(1) as u64) as usize;
        let at_op = (next() % max_op.max(1) as u64) as usize;
        let mut inj = FaultInjector::new();
        match next() % 4 {
            0 => {
                inj.schedule.insert((rank, at_op), FaultAction::Kill);
            }
            1 => {
                // lint: allow(deadline-literals) — injected fault magnitude, not an op budget
                let delay = Duration::from_millis(1 + next() % max_delay_ms.max(1));
                inj.schedule
                    .insert((rank, at_op), FaultAction::Delay(delay));
            }
            2 => {
                inj.schedule.insert((rank, at_op), FaultAction::DropPayload);
            }
            _ => {
                // lint: allow(deadline-literals) — injected brownout magnitude, not an op budget
                let mean = Duration::from_millis(1 + next() % (max_delay_ms / 4).max(1));
                let spec = Brownout {
                    mean_delay: mean,
                    jitter_pct: 25,
                    stutter_every: 4,
                    stutter_delay: mean,
                    from_op: at_op,
                };
                inj.brownouts.insert(rank, (spec, next()));
            }
        }
        inj
    }

    /// The scheduled events, in no particular order.
    pub fn events(&self) -> Vec<(usize, usize, FaultAction)> {
        self.schedule
            .iter()
            .map(|(&(rank, op), &action)| (rank, op, action))
            .collect()
    }

    /// Number of collectives `rank` has entered so far.
    pub fn ops_seen(&self, rank: usize) -> usize {
        self.counters.lock().get(&rank).copied().unwrap_or(0)
    }

    /// Called by the runtime when `rank` enters a collective: advances
    /// the rank's op counter and returns the fault (if any) scheduled
    /// for that op. An exact one-shot schedule hit wins over the rank's
    /// brownout; otherwise an active brownout supplies a jittered delay.
    pub(crate) fn on_collective(&self, rank: usize) -> Option<FaultAction> {
        let mut counters = self.counters.lock();
        let op = counters.entry(rank).or_insert(0);
        let current = *op;
        *op += 1;
        drop(counters);
        if let Some(action) = self.schedule.get(&(rank, current)).copied() {
            return Some(action);
        }
        self.brownouts
            .get(&rank)
            .and_then(|&(spec, seed)| spec.delay_for(seed, rank, current))
            .map(FaultAction::Delay)
    }
}

/// SplitMix64 — the same generator family the shims use, kept local so
/// the library crate needs no rand dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_schedule_fires_at_op_index() {
        let inj = FaultInjector::new()
            .kill(1, 2)
            .delay(0, 0, Duration::from_millis(5));
        assert_eq!(
            inj.on_collective(0),
            Some(FaultAction::Delay(Duration::from_millis(5)))
        );
        assert_eq!(inj.on_collective(0), None);
        assert_eq!(inj.on_collective(1), None); // op 0
        assert_eq!(inj.on_collective(1), None); // op 1
        assert_eq!(inj.on_collective(1), Some(FaultAction::Kill)); // op 2
        assert_eq!(inj.ops_seen(1), 3);
        assert_eq!(inj.ops_seen(7), 0);
    }

    #[test]
    fn seeded_schedule_is_deterministic() {
        let a = FaultInjector::single_fault_from_seed(42, 8, 4, 100);
        let b = FaultInjector::single_fault_from_seed(42, 8, 4, 100);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.brownouts(), b.brownouts());
        assert_eq!(a.events().len() + a.brownouts().len(), 1);
        if let Some(&(rank, op, _)) = a.events().first() {
            assert!(rank < 8);
            assert!(op < 4);
        }
        if let Some(&(rank, spec, _)) = a.brownouts().first() {
            assert!(rank < 8);
            assert!(spec.from_op < 4);
        }
    }

    #[test]
    fn seeds_cover_all_action_kinds() {
        let mut kinds = [false; 4];
        for seed in 0..64 {
            let inj = FaultInjector::single_fault_from_seed(seed, 4, 3, 50);
            if let Some(&(_, spec, _)) = inj.brownouts().first() {
                assert!(spec.mean_delay >= Duration::from_millis(1));
                assert!(spec.mean_delay <= Duration::from_millis(12));
                kinds[3] = true;
                continue;
            }
            match inj.events()[0].2 {
                FaultAction::Kill => kinds[0] = true,
                FaultAction::Delay(d) => {
                    assert!(d >= Duration::from_millis(1));
                    assert!(d <= Duration::from_millis(50));
                    kinds[1] = true;
                }
                FaultAction::DropPayload => kinds[2] = true,
            }
        }
        assert!(kinds.iter().all(|&k| k), "kinds seen: {kinds:?}");
    }

    #[test]
    fn brownout_delays_every_op_from_start_with_bounded_jitter() {
        let spec = Brownout {
            mean_delay: Duration::from_millis(100),
            jitter_pct: 20,
            stutter_every: 0,
            stutter_delay: Duration::ZERO,
            from_op: 2,
        };
        assert_eq!(spec.delay_for(7, 1, 0), None);
        assert_eq!(spec.delay_for(7, 1, 1), None);
        let mut distinct = std::collections::HashSet::new();
        for op in 2..32 {
            let d = spec.delay_for(7, 1, op).expect("active from op 2");
            assert!(d >= Duration::from_millis(80), "jitter floor: {d:?}");
            assert!(d <= Duration::from_millis(120), "jitter ceiling: {d:?}");
            distinct.insert(d);
        }
        assert!(distinct.len() > 1, "jitter must vary across ops");
    }

    #[test]
    fn brownout_is_deterministic_and_stutters_periodically() {
        let spec = Brownout {
            mean_delay: Duration::from_millis(10),
            jitter_pct: 0,
            stutter_every: 3,
            stutter_delay: Duration::from_millis(40),
            from_op: 0,
        };
        for op in 0..12 {
            let a = spec.delay_for(9, 2, op);
            assert_eq!(a, spec.delay_for(9, 2, op), "same inputs, same delay");
            let d = a.expect("active from op 0");
            if op % 3 == 0 {
                assert_eq!(d, Duration::from_millis(50), "op {op} stutters");
            } else {
                assert_eq!(d, Duration::from_millis(10), "op {op} is steady");
            }
        }
    }

    #[test]
    fn injected_brownout_delays_collectives_but_exact_schedule_wins() {
        let inj = FaultInjector::new().kill(0, 1).brownout(
            0,
            Brownout::steady(Duration::from_millis(5)),
            3,
        );
        match inj.on_collective(0) {
            Some(FaultAction::Delay(d)) => assert!(d >= Duration::from_millis(4)),
            other => panic!("op 0 should limp, got {other:?}"),
        }
        assert_eq!(inj.on_collective(0), Some(FaultAction::Kill));
        assert_eq!(inj.on_collective(1), None, "other ranks run at speed");
    }
}
