use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Error type for communicator and topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A group was requested over ranks outside the world.
    RankOutOfRange {
        /// Offending rank.
        rank: usize,
        /// World size.
        world_size: usize,
    },
    /// A group rank list was empty or contained duplicates.
    InvalidGroup {
        /// Human-readable reason.
        reason: String,
    },
    /// The caller is not a member of the group it tried to use.
    NotAMember {
        /// Caller's global rank.
        rank: usize,
    },
    /// Buffer length is incompatible with the collective.
    BadBufferLength {
        /// Name of the collective.
        op: &'static str,
        /// Provided length.
        len: usize,
        /// Group size it must relate to.
        group_size: usize,
    },
    /// A parallelism configuration does not tile the cluster.
    BadParallelism {
        /// Human-readable reason.
        reason: String,
    },
    /// A collective's deadline expired before every member joined.
    Timeout {
        /// Name of the collective that timed out.
        op: &'static str,
        /// Global ranks that had not joined (or drained) when the
        /// deadline expired.
        waiting_on: Vec<usize>,
        /// The budget the op was given (static per-world deadline or
        /// the adaptive controller's per-op budget).
        deadline: Duration,
        /// How long the caller actually waited before giving up —
        /// always `>= deadline`, the overshoot being poll granularity.
        elapsed: Duration,
    },
    /// A member of the group is known to be dead, so the collective can
    /// never complete. When the reporting rank *is* the dead rank, this
    /// is the error its own call returns.
    RankDown {
        /// The dead rank's global rank.
        rank: usize,
    },
    /// The group was poisoned: a member panicked mid-collective (or
    /// committed an SPMD violation), leaving the rendezvous state
    /// indeterminate. All subsequent collectives on the group fail.
    Poisoned {
        /// Global rank that poisoned the group.
        rank: usize,
    },
    /// The caller's op is behind the group's op stream: peers gave up on
    /// this exchange and moved past it, so the caller's deposit can never
    /// rendezvous with the intended peers. Retrying cannot succeed — the
    /// stream only advances; the caller must skip the op too
    /// ([`crate::GroupComm::skip_op`]) or fail upward.
    Abandoned {
        /// Name of the collective.
        op: &'static str,
        /// The caller's op-stream position.
        op_id: u64,
        /// The group's (strictly greater) current round id.
        stream_id: u64,
    },
    /// The world's membership changed: an eviction completed and this
    /// world is fenced. No collective on it can ever complete again —
    /// survivors must rebind through
    /// [`crate::Communicator::reconfigured`], which hands them a fresh
    /// communicator over the shrunken world (contiguous ranks, rebuilt
    /// groups, op streams starting from zero).
    Reconfigured {
        /// The membership epoch the world advanced to.
        epoch: u64,
    },
    /// Two ranks proposed evicting *different* victims in the same
    /// membership epoch. Exactly one eviction can be agreed per epoch;
    /// the losing proposer must re-propose after reconfiguring.
    EvictConflict {
        /// The victim this caller proposed.
        proposed: usize,
        /// The victim already under agreement.
        agreed: usize,
    },
    /// A hot-expert migration fence lost to a concurrent membership
    /// change: an eviction vote is in progress (evictions always win
    /// over migrations), or another fence with a *different*
    /// `(expert, from, to)` key is already collecting joins. The
    /// migration did not happen anywhere — every joiner withdraws, so
    /// no rank installs the new placement. The caller should finish
    /// the membership change (or let the other fence drain) and
    /// re-evaluate.
    MigrationConflict {
        /// Global expert id the losing fence tried to move.
        expert: usize,
        /// Source global rank of the losing fence.
        from: usize,
        /// Destination global rank of the losing fence.
        to: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankOutOfRange { rank, world_size } => {
                write!(f, "rank {rank} out of range for world of {world_size}")
            }
            CommError::InvalidGroup { reason } => write!(f, "invalid group: {reason}"),
            CommError::NotAMember { rank } => {
                write!(f, "rank {rank} is not a member of the group")
            }
            CommError::BadBufferLength {
                op,
                len,
                group_size,
            } => write!(
                f,
                "{op}: buffer length {len} incompatible with group size {group_size}"
            ),
            CommError::BadParallelism { reason } => {
                write!(f, "bad parallelism configuration: {reason}")
            }
            CommError::Timeout {
                op,
                waiting_on,
                deadline,
                elapsed,
            } => {
                write!(
                    f,
                    "{op}: deadline of {:.1}ms expired after {:.1}ms waiting on ranks {waiting_on:?}",
                    deadline.as_secs_f64() * 1e3,
                    elapsed.as_secs_f64() * 1e3
                )
            }
            CommError::RankDown { rank } => {
                write!(f, "rank {rank} is down; collective cannot complete")
            }
            CommError::Poisoned { rank } => {
                write!(f, "group poisoned by rank {rank} dying mid-collective")
            }
            CommError::Abandoned {
                op,
                op_id,
                stream_id,
            } => write!(
                f,
                "{op}: op {op_id} abandoned by peers (group op stream at {stream_id})"
            ),
            CommError::Reconfigured { epoch } => write!(
                f,
                "world reconfigured to membership epoch {epoch}; rebind via Communicator::reconfigured()"
            ),
            CommError::EvictConflict { proposed, agreed } => write!(
                f,
                "eviction conflict: proposed victim {proposed} but rank {agreed} is already under agreement"
            ),
            CommError::MigrationConflict { expert, from, to } => write!(
                f,
                "migration conflict: fence for expert {expert} ({from} -> {to}) lost to a concurrent eviction or disagreeing fence"
            ),
        }
    }
}

impl Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CommError::RankOutOfRange {
            rank: 9,
            world_size: 4
        }
        .to_string()
        .contains("9"));
        assert!(CommError::BadBufferLength {
            op: "all_to_all",
            len: 7,
            group_size: 4
        }
        .to_string()
        .contains("all_to_all"));
        let timeout = CommError::Timeout {
            op: "all_to_all",
            waiting_on: vec![1, 3],
            deadline: Duration::from_millis(500),
            elapsed: Duration::from_millis(512),
        };
        assert!(timeout.to_string().contains("all_to_all"));
        assert!(timeout.to_string().contains("[1, 3]"));
        assert!(timeout.to_string().contains("500.0ms"));
        assert!(timeout.to_string().contains("512.0ms"));
        assert!(CommError::RankDown { rank: 2 }.to_string().contains("2"));
        assert!(CommError::Poisoned { rank: 5 }
            .to_string()
            .contains("poisoned"));
        let abandoned = CommError::Abandoned {
            op: "all_to_all",
            op_id: 3,
            stream_id: 5,
        };
        assert!(abandoned.to_string().contains("all_to_all"));
        assert!(abandoned.to_string().contains("abandoned"));
        assert!(abandoned.to_string().contains("3"));
        assert!(abandoned.to_string().contains("5"));
        let reconfigured = CommError::Reconfigured { epoch: 7 };
        assert!(reconfigured.to_string().contains("epoch 7"));
        assert!(reconfigured.to_string().contains("reconfigured"));
        let conflict = CommError::EvictConflict {
            proposed: 2,
            agreed: 3,
        };
        assert!(conflict.to_string().contains("2"));
        assert!(conflict.to_string().contains("3"));
        assert!(conflict.to_string().contains("conflict"));
        let migration = CommError::MigrationConflict {
            expert: 5,
            from: 1,
            to: 2,
        };
        assert!(migration.to_string().contains("expert 5"));
        assert!(migration.to_string().contains("1 -> 2"));
        assert!(migration.to_string().contains("conflict"));
    }

    #[test]
    fn fault_variants_are_clone_and_eq() {
        let t = CommError::Timeout {
            op: "barrier",
            waiting_on: vec![0],
            deadline: Duration::from_millis(10),
            elapsed: Duration::from_millis(11),
        };
        assert_eq!(t.clone(), t);
        assert_ne!(
            CommError::RankDown { rank: 1 },
            CommError::Poisoned { rank: 1 }
        );
        let a = CommError::Abandoned {
            op: "barrier",
            op_id: 0,
            stream_id: 1,
        };
        assert_eq!(a.clone(), a);
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CommError>();
    }
}
