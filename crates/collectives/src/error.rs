use std::error::Error;
use std::fmt;

/// Error type for communicator and topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A group was requested over ranks outside the world.
    RankOutOfRange {
        /// Offending rank.
        rank: usize,
        /// World size.
        world_size: usize,
    },
    /// A group rank list was empty or contained duplicates.
    InvalidGroup {
        /// Human-readable reason.
        reason: String,
    },
    /// The caller is not a member of the group it tried to use.
    NotAMember {
        /// Caller's global rank.
        rank: usize,
    },
    /// Buffer length is incompatible with the collective.
    BadBufferLength {
        /// Name of the collective.
        op: &'static str,
        /// Provided length.
        len: usize,
        /// Group size it must relate to.
        group_size: usize,
    },
    /// A parallelism configuration does not tile the cluster.
    BadParallelism {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankOutOfRange { rank, world_size } => {
                write!(f, "rank {rank} out of range for world of {world_size}")
            }
            CommError::InvalidGroup { reason } => write!(f, "invalid group: {reason}"),
            CommError::NotAMember { rank } => {
                write!(f, "rank {rank} is not a member of the group")
            }
            CommError::BadBufferLength {
                op,
                len,
                group_size,
            } => write!(
                f,
                "{op}: buffer length {len} incompatible with group size {group_size}"
            ),
            CommError::BadParallelism { reason } => {
                write!(f, "bad parallelism configuration: {reason}")
            }
        }
    }
}

impl Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CommError::RankOutOfRange {
            rank: 9,
            world_size: 4
        }
        .to_string()
        .contains("9"));
        assert!(CommError::BadBufferLength {
            op: "all_to_all",
            len: 7,
            group_size: 4
        }
        .to_string()
        .contains("all_to_all"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CommError>();
    }
}
