//! Elastic-training observability and durability properties that
//! assert *exact* process-global counter values — kept in their own
//! test binary so no concurrently running test can pollute the counts.
//!
//! * drop accounting stays exactly-once through an eviction;
//! * a corrupt (truncated or NaN-bearing) on-disk checkpoint read
//!   mid-reconfiguration falls back to the in-memory snapshot with a
//!   typed error — never a panic, never silent zero weights.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use collectives::{run_world_within, CommWorld};
use fsmoe::config::MoeConfig;
use fsmoe::MoeError;
use models::{ElasticPolicy, ElasticTrainer};
use tensor::{Tensor, TensorRng};

const SEED: u64 = 33;
const LR: f32 = 0.1;
const BUDGET: Duration = Duration::from_secs(120);

fn config(num_experts: usize) -> MoeConfig {
    MoeConfig::builder()
        .batch_size(1)
        .seq_len(6)
        .embed_dim(8)
        .hidden_dim(16)
        .num_experts(num_experts)
        .top_k(2)
        .no_drop()
        .build()
        .unwrap()
}

fn rank_data(cfg: &MoeConfig, old_rank: usize) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seed_from(1000 + old_rank as u64);
    let x = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    let t = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    (x, t)
}

fn world(n: usize) -> CommWorld {
    CommWorld::new(n).with_deadline(Duration::from_secs(5))
}

#[test]
fn drop_accounting_is_exactly_once_through_eviction() {
    // Victim dies after an odd step so the failing step has no snapshot
    // collective in front of it: each survivor's failing forward
    // degrades exactly once (dispatch leg; the combine-leg degrade is
    // suppressed by the per-forward flag) and AlltoAll retries never
    // re-count.
    let session = obs::session();
    let cfg = config(6);
    let survivor_drops = Arc::new(AtomicUsize::new(0));
    let results = run_world_within(world(3), BUDGET, {
        let cfg = cfg.clone();
        let survivor_drops = Arc::clone(&survivor_drops);
        move |comm| {
            let rank = comm.rank();
            let mut trainer = ElasticTrainer::new(
                &cfg,
                comm,
                SEED,
                TensorRng::seed_from(7000 + rank as u64),
                ElasticPolicy::default(),
            )
            .unwrap();
            let (x, t) = rank_data(&cfg, rank);
            if rank == 1 {
                while trainer.step() < 3 {
                    trainer.train_step(&x, &t, LR).unwrap();
                }
                trainer.comm().declare_dead(rank);
                return 0usize;
            }
            while trainer.step() < 6 {
                trainer.train_step(&x, &t, LR).unwrap();
            }
            // The drop account survives the reshard.
            survivor_drops.fetch_add(trainer.dropped_tokens(), Ordering::Relaxed);
            trainer.dropped_tokens()
        }
    });
    let snap = session.snapshot();
    assert_eq!(
        snap.counter(obs::names::MOE_DROP_EVENTS),
        2,
        "one degrade event per survivor, never double-counted by retries"
    );
    let dropped = snap.counter(obs::names::MOE_DROPPED_TOKENS) as usize;
    assert!(dropped > 0, "the failing step routed assignments");
    assert_eq!(
        survivor_drops.load(Ordering::Relaxed),
        dropped,
        "per-layer drop counters survive re-sharding and match obs"
    );
    assert_eq!(results[1], 0);
    assert_eq!(snap.counter(obs::names::COLLECTIVES_EVICTIONS), 1);
}

/// Shared harness for the corrupt-disk-checkpoint scenarios: the victim
/// corrupts the persisted snapshot before dying, so every survivor's
/// recovery must detect the damage, record a typed error, and fall back
/// to the in-memory snapshot.
fn corrupt_checkpoint_scenario(tag: &str, corrupt: fn(&PathBuf)) {
    let session = obs::session();
    let cfg = config(6);
    let dir = std::env::temp_dir().join(format!("fsmoe-elastic-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let results = run_world_within(world(3), BUDGET, {
        let cfg = cfg.clone();
        let dir = dir.clone();
        move |comm| {
            let rank = comm.rank();
            let mut trainer = ElasticTrainer::new(
                &cfg,
                comm,
                SEED,
                TensorRng::seed_from(7000 + rank as u64),
                ElasticPolicy::default(),
            )
            .unwrap()
            .with_checkpoint_dir(dir.clone());
            let (x, t) = rank_data(&cfg, rank);
            if rank == 2 {
                while trainer.step() < 3 {
                    trainer.train_step(&x, &t, LR).unwrap();
                }
                // Damage the persisted step-2 snapshot, then die.
                corrupt(&dir.join("elastic-step-2.json"));
                trainer.comm().declare_dead(rank);
                return None;
            }
            while trainer.step() < 6 {
                trainer.train_step(&x, &t, LR).unwrap();
            }
            let fallback_typed = trainer.last_fallback().map(|e| {
                matches!(
                    e,
                    MoeError::CorruptCheckpoint { .. } | MoeError::BadInput { .. }
                )
            });
            let ckpt = trainer.full_checkpoint().unwrap();
            let finite = ckpt
                .experts
                .iter()
                .flatten()
                .all(|w| w.data().iter().all(|v| v.is_finite()));
            let nonzero = ckpt
                .experts
                .iter()
                .flatten()
                .any(|w| w.data().iter().any(|v| *v != 0.0));
            Some((fallback_typed, finite && nonzero, trainer.evictions()))
        }
    });
    for r in results.iter().take(2) {
        let (fallback_typed, healthy, evictions) = (*r).expect("survivor finished");
        assert_eq!(
            fallback_typed,
            Some(true),
            "fallback must be recorded with a typed error"
        );
        assert!(healthy, "restored weights must be finite and non-zero");
        assert_eq!(evictions, 1);
    }
    let snap = session.snapshot();
    assert_eq!(
        snap.counter(obs::names::ELASTIC_CHECKPOINT_FALLBACKS),
        2,
        "each survivor falls back exactly once"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_disk_checkpoint_falls_back_to_memory() {
    corrupt_checkpoint_scenario("truncated", |path| {
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::write(path, &text[..text.len() / 2]).unwrap();
    });
}

#[test]
fn nan_disk_checkpoint_falls_back_to_memory() {
    corrupt_checkpoint_scenario("nan", |path| {
        let text = std::fs::read_to_string(path).unwrap();
        // Replace the first numeric payload with an overflow literal the
        // loader must reject as non-finite.
        let damaged = text.replacen("\"data\":[", "\"data\":[1e999,", 1);
        assert_ne!(damaged, text, "checkpoint JSON shape changed");
        std::fs::write(path, damaged).unwrap();
    });
}
