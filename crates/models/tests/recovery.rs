//! The recovery driver's central guarantee: a training run that faults
//! mid-step and rolls back to the last checkpoint ends with weights
//! **bit-identical** to a run that never faulted. Exactness — not
//! approximate closeness — is what lets a resumed job keep its loss
//! curve.

use fsmoe::checkpoint::LayerCheckpoint;
use fsmoe::config::MoeConfig;
use fsmoe::expert::build_expert;
use fsmoe::gate::GShardGate;
use fsmoe::hooks::{MoeHooks, NoopHooks};
use fsmoe::layer::MoeLayer;
use fsmoe::order::TutelOrdering;
use fsmoe::routing::Routing;
use fsmoe::{MoeError, Result};
use models::RecoveryDriver;
use tensor::{Tensor, TensorRng};

const STEPS: usize = 9;
const INTERVAL: usize = 3;
const LR: f32 = 0.05;

fn config() -> MoeConfig {
    MoeConfig::builder()
        .batch_size(1)
        .seq_len(8)
        .embed_dim(8)
        .hidden_dim(16)
        .num_experts(3)
        .top_k(2)
        .no_drop()
        .build()
        .unwrap()
}

/// A hook that fails `before_combine` on one specific invocation —
/// mid-step, *after* the gate consumed routing randomness, so naive
/// resumption without RNG rollback would silently diverge.
#[derive(Debug)]
struct FaultOnce {
    calls: usize,
    fail_at: Option<usize>,
}

impl MoeHooks for FaultOnce {
    fn before_combine(&mut self, _buffer: &mut Tensor, _routing: &Routing) -> Result<()> {
        let call = self.calls;
        self.calls += 1;
        if self.fail_at == Some(call) {
            self.fail_at = None; // transient fault: next attempt succeeds
            return Err(MoeError::Comm(collectives::CommError::RankDown { rank: 0 }));
        }
        Ok(())
    }
}

/// Builds the GShard layer `MoeLayer::gshard` would, but with a custom
/// hook set (the sugar constructors pin `NoopHooks`) and the *noisy*
/// gate variant, so routing consumes RNG every step — the recovery
/// driver must then restore the stream position, not just weights, for
/// replay to be exact.
fn gshard_with_hooks(cfg: &MoeConfig, seed: u64, hooks: Box<dyn MoeHooks>) -> MoeLayer {
    let mut rng = TensorRng::seed_from(seed);
    let gate = GShardGate::new(cfg.embed_dim, cfg.num_experts, cfg.top_k, &mut rng).with_noise();
    let experts = (0..cfg.num_experts)
        .map(|_| build_expert(cfg.ffn, cfg.embed_dim, cfg.hidden_dim, &mut rng))
        .collect();
    MoeLayer::with_modules(
        cfg,
        Box::new(gate),
        Box::new(TutelOrdering::new()),
        experts,
        hooks,
    )
    .unwrap()
}

/// Per-step input, deterministic in the step index (a replayable data
/// loader — the other half of exact recovery).
fn step_input(cfg: &MoeConfig, step: usize) -> Tensor {
    let mut rng = TensorRng::seed_from(1000 + step as u64);
    rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0)
}

fn run_to_completion(mut driver: RecoveryDriver, cfg: &MoeConfig) -> (LayerCheckpoint, usize) {
    while driver.current_step() < STEPS {
        let input = step_input(cfg, driver.current_step());
        match driver.step(&input, LR) {
            Ok(_) => {}
            Err(MoeError::Comm(_)) => {
                let resumed = driver.recover().unwrap();
                assert_eq!(resumed, driver.current_step());
            }
            Err(e) => panic!("unexpected failure: {e:?}"),
        }
    }
    let recoveries = driver.recoveries();
    (driver.layer().checkpoint(), recoveries)
}

#[test]
fn recovery_reproduces_fault_free_run_bit_exactly() {
    let cfg = config();

    // Reference: no faults, straight through.
    let clean = gshard_with_hooks(&cfg, 42, Box::new(NoopHooks));
    let (clean_weights, clean_recoveries) = run_to_completion(
        RecoveryDriver::new(clean, TensorRng::seed_from(7), INTERVAL),
        &cfg,
    );
    assert_eq!(clean_recoveries, 0);

    // Faulty: step 7's combine fails mid-step (after 7 clean steps the
    // hook has seen 7 calls), forcing a rollback to the step-6 snapshot
    // and a replay of steps 6..9.
    let faulty = gshard_with_hooks(
        &cfg,
        42,
        Box::new(FaultOnce {
            calls: 0,
            fail_at: Some(7),
        }),
    );
    let (recovered_weights, recoveries) = run_to_completion(
        RecoveryDriver::new(faulty, TensorRng::seed_from(7), INTERVAL),
        &cfg,
    );
    assert_eq!(recoveries, 1, "exactly one fault was injected");

    // Bit-identical: PartialEq on checkpoints compares raw f32 data.
    assert_eq!(
        clean_weights, recovered_weights,
        "post-recovery weights must match the fault-free run exactly"
    );
}

#[test]
fn recovery_from_disk_checkpoints_is_bit_exact() {
    let cfg = config();
    let dir = std::env::temp_dir().join(format!("fsmoe-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let clean = gshard_with_hooks(&cfg, 11, Box::new(NoopHooks));
    let (clean_weights, _) = run_to_completion(
        RecoveryDriver::new(clean, TensorRng::seed_from(3), INTERVAL),
        &cfg,
    );

    let faulty = gshard_with_hooks(
        &cfg,
        11,
        Box::new(FaultOnce {
            calls: 0,
            fail_at: Some(4),
        }),
    );
    let driver = RecoveryDriver::new(faulty, TensorRng::seed_from(3), INTERVAL)
        .with_checkpoint_dir(dir.clone());
    let (recovered_weights, recoveries) = run_to_completion(driver, &cfg);

    assert_eq!(recoveries, 1);
    assert_eq!(clean_weights, recovered_weights);
    // Snapshots landed on disk at the interval marks, fully readable.
    let on_disk = LayerCheckpoint::load(&dir.join("step-3.json")).unwrap();
    assert!(on_disk.num_params() > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recover_before_first_step_falls_back_to_memory() {
    // A fault can land before the first step() has persisted anything:
    // with a checkpoint directory configured but no file on disk yet,
    // recovery must fall back to the in-memory snapshot instead of
    // failing on a missing step-0.json.
    let cfg = config();
    let dir = std::env::temp_dir().join(format!("fsmoe-recovery-fresh-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let layer = gshard_with_hooks(&cfg, 23, Box::new(NoopHooks));
    let initial = layer.checkpoint();
    let mut driver = RecoveryDriver::new(layer, TensorRng::seed_from(1), INTERVAL)
        .with_checkpoint_dir(dir.clone());
    let resumed = driver.recover().unwrap();
    assert_eq!(resumed, 0);
    assert_eq!(driver.layer().checkpoint(), initial);
    // Training proceeds normally afterwards (and now persists to disk).
    driver.step(&step_input(&cfg, 0), LR).unwrap();
    let on_disk = LayerCheckpoint::load(&dir.join("step-0.json")).unwrap();
    assert_eq!(on_disk, initial);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn without_rng_rollback_the_stream_would_diverge() {
    // Sanity check on the test's own sharpness: consuming an extra draw
    // from the routing RNG (what a fault without rollback does) changes
    // the weights. If this ever stops holding, the bit-exactness tests
    // above stop proving anything.
    let cfg = config();
    let layer_a = gshard_with_hooks(&cfg, 5, Box::new(NoopHooks));
    let mut rng_a = TensorRng::seed_from(9);
    let layer_b = gshard_with_hooks(&cfg, 5, Box::new(NoopHooks));
    let mut rng_b = TensorRng::seed_from(9);
    let _ = rng_b.normal_scalar(); // the stray draw

    let run = |mut layer: MoeLayer, rng: &mut TensorRng| {
        for step in 0..3 {
            let input = step_input(&cfg, step);
            let y = layer.forward(&input, rng).unwrap();
            let g = layer.backward(&Tensor::ones(y.dims())).unwrap();
            layer.apply_grads(&g, LR).unwrap();
        }
        layer.checkpoint()
    };
    let wa = run(layer_a, &mut rng_a);
    let wb = run(layer_b, &mut rng_b);
    assert_ne!(wa, wb, "RNG stream position must matter for routing");
}
