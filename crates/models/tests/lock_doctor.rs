//! Lock-doctor clean-run guarantee: the full 4-rank elastic recovery
//! path — training, a permanent rank death, eviction agreement, world
//! reconfiguration, re-sharding, rollback, and the post-recovery steps —
//! must produce **zero** potential-deadlock cycles and zero blocking
//! hazards. This is the false-positive budget of the doctor: if the
//! real protocol trips it, the detector (or the protocol) is wrong.
//!
//! Lives in its own test binary: the doctor's state is process-global,
//! and this test must not see cycles deliberately constructed by the
//! shim's own hazard tests.

use std::time::Duration;

use collectives::{run_world_within, CommWorld};
use fsmoe::config::MoeConfig;
use models::{ElasticPolicy, ElasticTrainer};
use parking_lot::lock_doctor;
use tensor::{Tensor, TensorRng};

const SEED: u64 = 33;
const LR: f32 = 0.1;
const BUDGET: Duration = Duration::from_secs(120);

fn config(num_experts: usize) -> MoeConfig {
    MoeConfig::builder()
        .batch_size(1)
        .seq_len(6)
        .embed_dim(8)
        .hidden_dim(16)
        .num_experts(num_experts)
        .top_k(2)
        .no_drop()
        .build()
        .unwrap()
}

fn rank_data(cfg: &MoeConfig, old_rank: usize) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seed_from(1000 + old_rank as u64);
    let x = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    let t = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    (x, t)
}

#[test]
fn four_rank_elastic_recovery_is_hazard_free() {
    lock_doctor::enable();
    let _ = lock_doctor::take_report();
    let _check = lock_doctor::check_guard();

    // The 4-rank scenario from the elastic bit-identity theorem: rank 2
    // dies for good after step 5, survivors evict and run to step 8.
    let cfg = config(12);
    let (victim, die_after, total) = (2usize, 5usize, 8usize);
    let world = CommWorld::new(4).with_deadline(Duration::from_secs(5));
    let results = run_world_within(world, BUDGET, {
        let cfg = cfg.clone();
        move |comm| {
            let rank = comm.rank();
            let mut trainer = ElasticTrainer::new(
                &cfg,
                comm,
                SEED,
                TensorRng::seed_from(7000 + rank as u64),
                ElasticPolicy::default(),
            )
            .unwrap();
            let (x, t) = rank_data(&cfg, rank);
            if rank == victim {
                while trainer.step() < die_after {
                    trainer.train_step(&x, &t, LR).unwrap();
                }
                trainer.comm().declare_dead(rank);
                return None;
            }
            while trainer.step() < total {
                trainer.train_step(&x, &t, LR).unwrap();
            }
            Some(trainer.evictions())
        }
    });

    // The run itself succeeded (one eviction per survivor)…
    assert!(results[victim].is_none());
    for (r, res) in results.iter().enumerate() {
        if r != victim {
            assert_eq!(*res, Some(1), "rank {r} must have completed eviction");
        }
    }

    // …and the doctor saw real lock traffic but no cycle, no hazard.
    let session = obs::session();
    let report = obs::publish_lock_doctor();
    assert!(
        report.is_clean(),
        "elastic recovery tripped the lock doctor:\n{}",
        report.render()
    );
    assert!(
        report.acquisitions > 0,
        "doctor must have observed the run's locking"
    );
    assert!(
        !report.sites.is_empty(),
        "creation sites must have been interned"
    );
    let snap = session.snapshot();
    assert_eq!(snap.counter(obs::names::LOCKDOCTOR_CYCLES), 0);
    assert_eq!(snap.counter(obs::names::LOCKDOCTOR_HAZARDS), 0);
    assert_eq!(
        snap.gauges[obs::names::LOCKDOCTOR_ACQUISITIONS],
        report.acquisitions as f64
    );
    assert!(snap.gauges[obs::names::LOCKDOCTOR_SITES] >= 1.0);
}
