//! Elastic-training properties: the headline bit-identity theorem
//! (survivors of an eviction compute exactly what a fresh smaller world
//! would) and the multi-seed chaos soak ci.sh runs under a hang
//! watchdog. Exact obs-counter properties live in `elastic_obs.rs`
//! (their own process, so concurrent tests cannot pollute counts).

use std::time::Duration;

use collectives::{run_world_within, CommWorld};
use fsmoe::checkpoint::LayerCheckpoint;
use fsmoe::config::MoeConfig;
use models::{ElasticPolicy, ElasticTrainer};
use tensor::{Tensor, TensorRng};

const SEED: u64 = 33;
const LR: f32 = 0.1;
const BUDGET: Duration = Duration::from_secs(120);

fn config(num_experts: usize) -> MoeConfig {
    MoeConfig::builder()
        .batch_size(1)
        .seq_len(6)
        .embed_dim(8)
        .hidden_dim(16)
        .num_experts(num_experts)
        .top_k(2)
        .no_drop()
        .build()
        .unwrap()
}

/// Fixed per-(old-)rank training data: the rank's identity, not its
/// current number, keys the data so a renumbered survivor keeps its own
/// stream.
fn rank_data(cfg: &MoeConfig, old_rank: usize) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seed_from(1000 + old_rank as u64);
    let x = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    let t = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    (x, t)
}

fn route_rng_for(old_rank: usize) -> TensorRng {
    TensorRng::seed_from(7000 + old_rank as u64)
}

fn world(n: usize) -> CommWorld {
    CommWorld::new(n).with_deadline(Duration::from_secs(5))
}

/// Runs a clean `n`-rank reference for `steps` steps; returns each
/// rank's (full checkpoint, route RNG) at the end — i.e. the state a
/// snapshot at `steps` would capture.
fn reference_state(cfg: &MoeConfig, n: usize, steps: usize) -> Vec<(LayerCheckpoint, TensorRng)> {
    run_world_within(world(n), BUDGET, {
        let cfg = cfg.clone();
        move |comm| {
            let rank = comm.rank();
            let mut trainer = ElasticTrainer::new(
                &cfg,
                comm,
                SEED,
                route_rng_for(rank),
                ElasticPolicy::default(),
            )
            .unwrap();
            let (x, t) = rank_data(&cfg, rank);
            while trainer.step() < steps {
                trainer.train_step(&x, &t, LR).unwrap();
            }
            (trainer.full_checkpoint().unwrap(), trainer.route_rng())
        }
    })
}

/// The elastic run: `n` ranks, `victim` dies for good after completing
/// `die_after` steps, survivors evict + re-shard and run to `total`
/// steps. Returns per-old-rank (final checkpoint, evictions, epoch) for
/// survivors, None for the victim.
fn elastic_run(
    cfg: &MoeConfig,
    n: usize,
    victim: usize,
    die_after: usize,
    total: usize,
) -> Vec<Option<(LayerCheckpoint, usize, u64)>> {
    run_world_within(world(n), BUDGET, {
        let cfg = cfg.clone();
        move |comm| {
            let rank = comm.rank();
            let mut trainer = ElasticTrainer::new(
                &cfg,
                comm,
                SEED,
                route_rng_for(rank),
                ElasticPolicy::default(),
            )
            .unwrap();
            let (x, t) = rank_data(&cfg, rank);
            if rank == victim {
                while trainer.step() < die_after {
                    trainer.train_step(&x, &t, LR).unwrap();
                }
                trainer.comm().declare_dead(rank);
                return None;
            }
            while trainer.step() < total {
                trainer.train_step(&x, &t, LR).unwrap();
            }
            Some((
                trainer.full_checkpoint().unwrap(),
                trainer.evictions(),
                trainer.comm().membership_epoch(),
            ))
        }
    })
}

/// **Headline property.** A 4-rank run that permanently loses rank 2
/// after step 5 finishes bit-identical to a fresh 3-rank run started
/// from the snapshot the survivors rolled back to — with each new rank
/// resuming the matching old rank's data and RNG stream.
#[test]
fn eviction_is_bit_identical_to_fresh_small_world() {
    // E = 12 so the orphaned 3 experts deal evenly over 3 survivors.
    let cfg = config(12);
    let (victim, die_after, total) = (2usize, 5usize, 8usize);
    // Snapshot cadence 2 ⇒ the survivors roll back to step 4.
    let snap_step = 4usize;

    let reference = reference_state(&cfg, 4, snap_step);
    let elastic = elastic_run(&cfg, 4, victim, die_after, total);

    // Fresh small world: survivors' old ranks, renumbered contiguously —
    // new rank i carries old rank survivors[i]'s data and RNG stream.
    let survivors: Vec<usize> = (0..4).filter(|&r| r != victim).collect();
    let fresh = run_world_within(world(3), BUDGET, {
        let cfg = cfg.clone();
        let snapshot = reference[0].0.clone();
        let rngs: Vec<TensorRng> = survivors.iter().map(|&r| reference[r].1.clone()).collect();
        let survivors = survivors.clone();
        move |comm| {
            let old_rank = survivors[comm.rank()];
            let mut trainer = ElasticTrainer::resume(
                &cfg,
                comm.clone(),
                SEED,
                &snapshot,
                rngs[comm.rank()].clone(),
                snap_step,
                ElasticPolicy::default(),
            )
            .unwrap();
            let (x, t) = rank_data(&cfg, old_rank);
            while trainer.step() < total {
                trainer.train_step(&x, &t, LR).unwrap();
            }
            trainer.full_checkpoint().unwrap()
        }
    });

    assert!(elastic[victim].is_none());
    for &old in &survivors {
        let (ckpt, evictions, epoch) = elastic[old].clone().expect("survivor finished");
        assert_eq!(evictions, 1);
        assert_eq!(epoch, 1);
        assert_eq!(
            ckpt, fresh[0],
            "survivor (old rank {old}) diverged from the fresh small world"
        );
    }
    // All fresh-world ranks agree with each other too (collective).
    assert_eq!(fresh[0], fresh[1]);
    assert_eq!(fresh[1], fresh[2]);
}

/// The same property at the smallest interesting scale: 3 ranks losing
/// rank 1 matches a fresh 2-rank run, with the victim dying on an even
/// step so the failure surfaces inside the snapshot collective.
#[test]
fn eviction_bit_identity_holds_from_snapshot_failure() {
    // E = 6: divisible by 3 and 2.
    let cfg = config(6);
    let (victim, die_after, total) = (1usize, 2usize, 5usize);
    // Victim dies after step 2; survivors fail in the step-2 snapshot
    // and roll back to the *initial* snapshot (step 0).
    let reference = reference_state(&cfg, 3, 0);
    let elastic = elastic_run(&cfg, 3, victim, die_after, total);

    let survivors: Vec<usize> = (0..3).filter(|&r| r != victim).collect();
    let fresh = run_world_within(world(2), BUDGET, {
        let cfg = cfg.clone();
        let snapshot = reference[0].0.clone();
        let rngs: Vec<TensorRng> = survivors.iter().map(|&r| reference[r].1.clone()).collect();
        let survivors = survivors.clone();
        move |comm| {
            let old_rank = survivors[comm.rank()];
            let mut trainer = ElasticTrainer::resume(
                &cfg,
                comm.clone(),
                SEED,
                &snapshot,
                rngs[comm.rank()].clone(),
                0,
                ElasticPolicy::default(),
            )
            .unwrap();
            let (x, t) = rank_data(&cfg, old_rank);
            while trainer.step() < total {
                trainer.train_step(&x, &t, LR).unwrap();
            }
            trainer.full_checkpoint().unwrap()
        }
    });

    for &old in &survivors {
        let (ckpt, ..) = elastic[old].clone().expect("survivor finished");
        assert_eq!(ckpt, fresh[0], "old rank {old} diverged");
    }
}

/// Chaos soak: many seeds × world sizes, every run must finish (the
/// watchdog turns a hang into a panic, which ci.sh distinguishes from
/// assertion failures by exit code) with one eviction, epoch 1, and all
/// survivors agreeing on the final weights.
///
/// World sizes 6 and 8 join in when `ELASTIC_SOAK_WIDE=1` (the ci.sh
/// chaos-soak stage sets it).
/// Gray-failure half of the chaos soak: persistent brownouts (slow,
/// never dead) across seeds, world sizes, severities, and pricing
/// horizons. The liveness property: every rank either finishes all its
/// steps or exits with the clean self-eviction error — no hang (a hang
/// trips the watchdog panic, which ci.sh's `timeout` wrapper
/// distinguishes from assertion failures via exit 124), no untyped
/// error. When an eviction does land, exactly the victim escalates and
/// every survivor agrees on the final weights.
#[test]
fn gray_failure_chaos_soak() {
    use collectives::{Brownout, CommError, FaultInjector};
    use fsmoe::MoeError;
    use models::{GrayFailurePolicy, HealthMonitor, HealthPolicy};

    for n in [3usize, 4] {
        for seed in 0u64..4 {
            let cfg = config(n * (n - 1));
            let victim = (seed as usize) % n;
            let mean_ms = 2 + 2 * (seed % 3);
            // Alternate pricing horizons: a long one prices eviction
            // in; a 1-step horizon can never amortize the
            // reconfiguration, so pricing defers forever and the whole
            // fleet must limp to completion instead.
            let horizon = if seed % 2 == 0 { 100_000 } else { 1 };
            let spec = Brownout {
                mean_delay: Duration::from_millis(mean_ms),
                jitter_pct: 25,
                stutter_every: 4,
                stutter_delay: Duration::from_millis(mean_ms),
                from_op: 2,
            };
            let comm_world =
                world(n).with_faults(FaultInjector::new().brownout(victim, spec, seed));
            let results = run_world_within(comm_world, BUDGET, {
                let cfg = cfg.clone();
                move |comm| {
                    let rank = comm.rank();
                    let policy = ElasticPolicy {
                        snapshot_interval: 10_000,
                        ..ElasticPolicy::default()
                    };
                    let mut trainer =
                        ElasticTrainer::new(&cfg, comm, SEED, route_rng_for(rank), policy)
                            .unwrap()
                            .with_health(
                                HealthMonitor::new(
                                    n,
                                    HealthPolicy {
                                        window: 2,
                                        threshold: 1.5,
                                        sustain: 2,
                                        cooldown: 1,
                                    },
                                ),
                                GrayFailurePolicy {
                                    costs: simnet::Testbed::a().costs,
                                    horizon_steps: horizon,
                                    moved_bytes: 1e6,
                                    checkpoint_bytes: 4e6,
                                },
                            );
                    let (x, t) = rank_data(&cfg, rank);
                    while trainer.step() < 8 {
                        match trainer.train_step(&x, &t, LR) {
                            Ok(_) => {}
                            Err(MoeError::Comm(CommError::RankDown { rank: r })) if r == rank => {
                                return None; // clean escalation exit
                            }
                            Err(e) => panic!("n={n} seed={seed} rank {rank}: {e:?}"),
                        }
                    }
                    Some((trainer.full_checkpoint().unwrap(), trainer.evictions()))
                }
            });
            let finished: Vec<_> = results.iter().flatten().collect();
            let escalated = results.iter().filter(|r| r.is_none()).count();
            if escalated == 0 {
                assert_eq!(finished.len(), n, "n={n} seed={seed}: all must finish");
            } else {
                assert_eq!(escalated, 1, "n={n} seed={seed}: only the victim escalates");
                assert!(
                    results[victim].is_none(),
                    "n={n} seed={seed}: the browned-out rank is the one evicted"
                );
                let (first, _) = finished[0];
                for (ckpt, evictions) in &finished {
                    assert_eq!(*evictions, 1, "n={n} seed={seed}");
                    assert_eq!(ckpt, first, "n={n} seed={seed}: survivors diverged");
                }
            }
        }
    }
}

#[test]
fn elastic_chaos_soak() {
    let mut sizes = vec![2usize, 3, 4];
    if std::env::var("ELASTIC_SOAK_WIDE").as_deref() == Ok("1") {
        sizes.extend([6, 8]);
    }
    for n in sizes {
        for seed in 0u64..8 {
            // E = n(n−1): divisible by both n and n−1, so the round-robin
            // deal stays uniform after any single eviction.
            let cfg = config(n * (n - 1));
            let victim = (seed as usize) % n;
            let die_after = 1 + (seed as usize % 3);
            let total = die_after + 3;
            let results = elastic_run(&cfg, n, victim, die_after, total);
            let survivors: Vec<_> = results.iter().flatten().collect();
            assert_eq!(
                survivors.len(),
                n - 1,
                "n={n} seed={seed}: every survivor must finish"
            );
            let (first_ckpt, _, _) = survivors[0];
            for (ckpt, evictions, epoch) in &survivors {
                assert_eq!(*evictions, 1, "n={n} seed={seed}");
                assert_eq!(*epoch, 1, "n={n} seed={seed}");
                assert_eq!(ckpt, first_ckpt, "n={n} seed={seed}: survivors diverged");
            }
        }
    }
}
