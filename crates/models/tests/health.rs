//! Gray-failure defense, end to end at the trainer level: a
//! browned-out (live but slow) rank walks the escalation ladder —
//! log → quarantine (hot expert drains off it) → priced live eviction —
//! and the survivors finish **bit-identical** to a fresh small world
//! started from the snapshot they rolled back to.

use std::time::Duration;

use collectives::{run_world_within, Brownout, CommError, CommWorld, FaultInjector};
use fsmoe::checkpoint::LayerCheckpoint;
use fsmoe::config::MoeConfig;
use fsmoe::MoeError;
use models::{ElasticPolicy, ElasticTrainer, GrayFailurePolicy, HealthMonitor, HealthPolicy};
use tensor::{Tensor, TensorRng};

const SEED: u64 = 33;
const LR: f32 = 0.1;
const BUDGET: Duration = Duration::from_secs(120);
/// Steps each run targets — comfortably past the deterministic ladder
/// timeline (log ≈ step 2, quarantine ≈ step 5, eviction ≈ step 8 with
/// the aggressive test policy below).
const TOTAL: usize = 12;

fn config(num_experts: usize) -> MoeConfig {
    MoeConfig::builder()
        .batch_size(1)
        .seq_len(6)
        .embed_dim(8)
        .hidden_dim(16)
        .num_experts(num_experts)
        .top_k(2)
        .no_drop()
        .build()
        .unwrap()
}

fn rank_data(cfg: &MoeConfig, old_rank: usize) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seed_from(1000 + old_rank as u64);
    let x = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    let t = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    (x, t)
}

fn route_rng_for(old_rank: usize) -> TensorRng {
    TensorRng::seed_from(7000 + old_rank as u64)
}

fn world(n: usize) -> CommWorld {
    CommWorld::new(n).with_deadline(Duration::from_secs(5))
}

/// Aggressive ladder so tests escalate within a dozen steps.
fn health_policy() -> HealthPolicy {
    HealthPolicy {
        window: 2,
        threshold: 1.5,
        sustain: 2,
        cooldown: 1,
    }
}

/// A pricing policy whose long horizon makes eviction win against any
/// real brownout (the slow rank's score is enormous here).
fn gray_policy() -> GrayFailurePolicy {
    GrayFailurePolicy {
        costs: simnet::Testbed::a().costs,
        horizon_steps: 100_000,
        moved_bytes: 1e6,
        checkpoint_bytes: 4e6,
    }
}

/// Snapshot only at step 0, so a rollback always lands on the initial
/// state — the one step number the timing-dependent eviction step
/// cannot perturb, which is what lets the bit-identity half of the test
/// pin its reference.
fn policy_snapshot_once() -> ElasticPolicy {
    ElasticPolicy {
        snapshot_interval: 10_000,
        ..ElasticPolicy::default()
    }
}

/// What a survivor reports at the end of the browned-out run.
#[derive(Debug, Clone)]
struct SurvivorReport {
    checkpoint: LayerCheckpoint,
    evictions: usize,
    quarantines: usize,
    migrations: usize,
    epoch: u64,
}

/// Runs the full gray-failure scenario: `n` ranks, `victim` browned out
/// (never killed), health + pricing armed on every rank. Returns `None`
/// for the self-evicted victim, a report for each survivor.
fn gray_run(cfg: &MoeConfig, n: usize, victim: usize) -> Vec<Option<SurvivorReport>> {
    let spec = Brownout::steady(Duration::from_millis(5));
    let comm_world = world(n).with_faults(FaultInjector::new().brownout(victim, spec, 11));
    run_world_within(comm_world, BUDGET, {
        let cfg = cfg.clone();
        move |comm| {
            let rank = comm.rank();
            let mut trainer = ElasticTrainer::new(
                &cfg,
                comm,
                SEED,
                route_rng_for(rank),
                policy_snapshot_once(),
            )
            .unwrap()
            .with_health(HealthMonitor::new(n, health_policy()), gray_policy());
            let (x, t) = rank_data(&cfg, rank);
            while trainer.step() < TOTAL {
                match trainer.train_step(&x, &t, LR) {
                    Ok(_) => {}
                    // The canonical self-eviction exit: the fleet
                    // priced this rank out and is evicting it.
                    Err(MoeError::Comm(CommError::RankDown { rank: r })) if r == rank => {
                        assert_eq!(rank, victim, "only the slow rank may be priced out");
                        return None;
                    }
                    Err(e) => panic!("rank {rank}: unexpected {e:?}"),
                }
            }
            Some(SurvivorReport {
                checkpoint: trainer.full_checkpoint().unwrap(),
                evictions: trainer.evictions(),
                quarantines: trainer.quarantines(),
                migrations: trainer.migrations(),
                epoch: trainer.comm().membership_epoch(),
            })
        }
    })
}

/// **Headline property.** A 4-rank run whose rank 3 limps at ~5 ms per
/// collective walks the whole ladder (quarantine with a drain
/// migration, then a priced live eviction) and the three survivors
/// finish bit-identical to a fresh 3-rank run resumed from the same
/// initial snapshot.
#[test]
fn browned_out_rank_is_quarantined_then_evicted_bit_identically() {
    let cfg = config(12);
    let victim = 3usize;
    let results = gray_run(&cfg, 4, victim);

    assert!(
        results[victim].is_none(),
        "the slow rank must self-evict, got {:?}",
        results[victim]
    );
    let survivors: Vec<&SurvivorReport> = results.iter().flatten().collect();
    assert_eq!(survivors.len(), 3, "every healthy rank must finish");
    for s in &survivors {
        assert_eq!(s.evictions, 1, "exactly one live eviction: {s:?}");
        assert_eq!(s.epoch, 1, "one membership epoch bump: {s:?}");
        assert!(s.quarantines >= 1, "quarantine precedes eviction: {s:?}");
        assert!(
            s.migrations >= 1,
            "the quarantine must drain a hot expert: {s:?}"
        );
        assert_eq!(
            s.checkpoint, survivors[0].checkpoint,
            "survivors disagree on final weights"
        );
    }

    // Fresh small world from the same initial snapshot: the rollback
    // landed on step 0 (snapshot_interval > TOTAL), so new rank i
    // resumes old rank i's data and RNG stream (victim was the highest
    // rank, so survivor numbering is unchanged).
    let initial = run_world_within(world(4), BUDGET, {
        let cfg = cfg.clone();
        move |comm| {
            let rank = comm.rank();
            let trainer = ElasticTrainer::new(
                &cfg,
                comm,
                SEED,
                route_rng_for(rank),
                policy_snapshot_once(),
            )
            .unwrap();
            trainer.full_checkpoint().unwrap()
        }
    });
    let fresh = run_world_within(world(3), BUDGET, {
        let cfg = cfg.clone();
        let snapshot = initial[0].clone();
        move |comm| {
            let old_rank = comm.rank();
            let mut trainer = ElasticTrainer::resume(
                &cfg,
                comm.clone(),
                SEED,
                &snapshot,
                route_rng_for(old_rank),
                0,
                policy_snapshot_once(),
            )
            .unwrap();
            let (x, t) = rank_data(&cfg, old_rank);
            while trainer.step() < TOTAL {
                trainer.train_step(&x, &t, LR).unwrap();
            }
            trainer.full_checkpoint().unwrap()
        }
    });
    assert_eq!(fresh[0], fresh[1]);
    assert_eq!(fresh[1], fresh[2]);
    assert_eq!(
        survivors[0].checkpoint, fresh[0],
        "gray-failure eviction must be bit-identical to the fresh small world"
    );
}

/// A healthy fleet with the defense armed never escalates: no
/// quarantines, no evictions, scores hugging 1.0 on every rank.
#[test]
fn healthy_fleet_with_defense_armed_never_escalates() {
    let cfg = config(6);
    let results = run_world_within(world(3), BUDGET, {
        let cfg = cfg.clone();
        move |comm| {
            let rank = comm.rank();
            let mut trainer = ElasticTrainer::new(
                &cfg,
                comm,
                SEED,
                route_rng_for(rank),
                ElasticPolicy::default(),
            )
            .unwrap()
            // Default policy: threshold 1.75 with sustain 3 — scheduler
            // jitter on equal ranks must stay under it.
            .with_health(
                HealthMonitor::new(3, HealthPolicy::default()),
                gray_policy(),
            );
            let (x, t) = rank_data(&cfg, rank);
            for _ in 0..6 {
                trainer.train_step(&x, &t, LR).unwrap();
            }
            (
                trainer.quarantines(),
                trainer.evictions(),
                trainer.health().map(|m| m.quarantined().len()),
            )
        }
    });
    for (rank, &(quarantines, evictions, quarantined)) in results.iter().enumerate() {
        assert_eq!(quarantines, 0, "rank {rank} quarantined a healthy peer");
        assert_eq!(evictions, 0, "rank {rank} evicted a healthy peer");
        assert_eq!(quarantined, Some(0));
    }
}
