//! Property-based tests over iteration planning: every schedule's plan
//! must be well-formed and gradient-conserving for random layer shapes.

use baselines::ScheduleKind;
use collectives::ParallelDims;
use fsmoe::config::{FfnKind, MoeConfig};
use models::iteration::{build_iteration_graph, plan_iteration};
use models::layerspec::TransformerLayerSpec;
use proptest::prelude::*;
use simnet::{Engine, Testbed};

fn spec_for(
    testbed: &Testbed,
    batch: usize,
    seq: usize,
    embed_pow: u32,
    hscale: usize,
    ffn: FfnKind,
) -> TransformerLayerSpec {
    let embed = 2usize.pow(embed_pow);
    let cfg = MoeConfig::builder()
        .batch_size(batch)
        .seq_len(seq)
        .embed_dim(embed)
        .hidden_dim(embed * hscale)
        .num_experts(testbed.nodes)
        .top_k(2.min(testbed.nodes))
        .capacity_factor(1.2)
        .ffn(ffn)
        .build()
        .expect("valid generated config");
    let dims = ParallelDims {
        dp: testbed.nodes,
        mp: testbed.gpus_per_node,
        ep: testbed.nodes,
        esp: testbed.gpus_per_node,
    };
    TransformerLayerSpec::new(&cfg, dims, 16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn plans_are_well_formed_and_simulate(
        batch in 1usize..4,
        seq in prop::sample::select(vec![128usize, 256, 512]),
        embed_pow in 9u32..12,
        hscale in 2usize..4,
        mixtral in any::<bool>(),
        layers in 1usize..6,
        testbed_a in any::<bool>(),
    ) {
        let testbed = if testbed_a { Testbed::a() } else { Testbed::b() };
        let ffn = if mixtral { FfnKind::Mixtral } else { FfnKind::Gpt };
        let spec = spec_for(&testbed, batch, seq, embed_pow, hscale, ffn);

        let mut makespans = Vec::new();
        for kind in ScheduleKind::ALL {
            let plan = plan_iteration(kind, &testbed.costs, &spec, layers);
            // structural well-formedness
            prop_assert_eq!(plan.layers, layers);
            prop_assert_eq!(plan.bwd_models.len(), layers);
            prop_assert_eq!(plan.r_bwd.len(), layers);
            prop_assert!(plan.r_fwd >= 1 && plan.r_fwd <= 64);
            prop_assert!(plan.r_bwd.iter().all(|&r| (1..=64).contains(&r)));
            prop_assert!(plan.attn_fwd > 0.0 && plan.attn_bwd > plan.attn_fwd);

            // the gradient never disappears: total GAR time prices at
            // least one AllReduce of all the dense bytes
            let total_gar: f64 = plan
                .gar_in_moe
                .iter()
                .chain(&plan.gar_with_dense)
                .flatten()
                .sum::<f64>()
                + plan.gar_tail.iter().sum::<f64>();
            let floor = testbed
                .costs
                .all_reduce
                .time(spec.dense_param_bytes * layers as f64)
                - testbed.costs.all_reduce.alpha * (layers as f64 - 1.0).max(0.0);
            prop_assert!(
                total_gar >= floor.min(testbed.costs.all_reduce.time(spec.dense_param_bytes)) * 0.5,
                "{kind}: gar {total_gar} below floor {floor}"
            );

            // and the lowered graph simulates to a finite makespan
            let (graph, _) = build_iteration_graph(&plan);
            let tl = Engine::new().simulate(&graph).unwrap();
            prop_assert!(tl.makespan().is_finite() && tl.makespan() > 0.0);
            makespans.push((kind, tl.makespan()));
        }

        // FSMoE never loses to DS-MoE on any random configuration
        let ds = makespans[0].1;
        let fsmoe = makespans[5].1;
        prop_assert!(
            fsmoe <= ds * 1.001,
            "FSMoE {fsmoe} vs DS-MoE {ds} on random config"
        );
    }
}
