//! Eviction-free migration properties: the headline bit-identity
//! theorem (a run that migrates a hot expert mid-training computes
//! exactly what the unmigrated run computes) and the chaos+skew soak
//! ci.sh runs under the hang watchdog — Zipf-skewed workloads drive the
//! imbalance detector into at least one migration that strictly lowers
//! the max/mean position load, with zero dropped tokens.

use std::time::Duration;

use collectives::{run_world_within, CommWorld, FaultInjector};
use fsmoe::checkpoint::LayerCheckpoint;
use fsmoe::config::MoeConfig;
use fsmoe::dist::DistMoeLayer;
use fsmoe::gate::GShardGate;
use fsmoe::reshard::ExpertMap;
use models::{
    dist_train_step, flat_topology, ElasticPolicy, ElasticTrainer, ImbalanceDetector,
    MigrationDecision,
};
use tensor::{Tensor, TensorRng};
use workloadgen::{Distribution, WorkloadGen};

const SEED: u64 = 33;
const LR: f32 = 0.1;
const BUDGET: Duration = Duration::from_secs(120);

fn config(num_experts: usize) -> MoeConfig {
    MoeConfig::builder()
        .batch_size(1)
        .seq_len(6)
        .embed_dim(8)
        .hidden_dim(16)
        .num_experts(num_experts)
        .top_k(2)
        .no_drop()
        .build()
        .unwrap()
}

fn rank_data(cfg: &MoeConfig, rank: usize) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seed_from(1000 + rank as u64);
    let x = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    let t = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
    (x, t)
}

fn route_rng_for(rank: usize) -> TensorRng {
    TensorRng::seed_from(7000 + rank as u64)
}

fn world(n: usize) -> CommWorld {
    CommWorld::new(n).with_deadline(Duration::from_secs(5))
}

/// An `n`-rank training run that performs the given `(step, expert,
/// to_position)` migrations just before the named steps. Returns each
/// rank's final global checkpoint and whether its placement ended
/// uniform.
fn migrating_run(
    cfg: &MoeConfig,
    n: usize,
    total: usize,
    migrations: Vec<(usize, usize, usize)>,
) -> Vec<(LayerCheckpoint, bool)> {
    run_world_within(world(n), BUDGET, {
        let cfg = cfg.clone();
        move |comm| {
            let topo = flat_topology(n).unwrap();
            let mut layer = DistMoeLayer::gshard(&cfg, &comm, &topo, SEED).unwrap();
            let mut route_rng = route_rng_for(comm.rank());
            let (x, t) = rank_data(&cfg, comm.rank());
            for step in 0..total {
                for &(at, expert, to) in &migrations {
                    if at == step {
                        layer.migrate(expert, to, &comm).unwrap();
                    }
                }
                dist_train_step(&mut layer, &x, &t, LR, &mut route_rng).unwrap();
            }
            (
                layer.checkpoint_global().unwrap(),
                layer.expert_map().is_uniform(),
            )
        }
    })
}

/// **Headline property.** A 4-rank run that migrates a hot expert
/// mid-training (and a second expert later, stacking two fences)
/// finishes with weights **bit-identical** to the run that never
/// migrates: expert placement is pure data movement, so where an expert
/// lives can never change what it computes.
#[test]
fn migration_is_bit_identical_to_unmigrated_run() {
    let cfg = config(8);
    let total = 6;
    let baseline = migrating_run(&cfg, 4, total, vec![]);
    // Expert 0 leaves position 0 after step 2; expert 7 joins the
    // thinned position 0 after step 4. Both moves leave the map
    // non-uniform: positions end with 1, 3, 2 and 2 experts.
    let migrated = migrating_run(&cfg, 4, total, vec![(2, 0, 1), (4, 7, 0)]);
    for rank in 0..4 {
        assert!(baseline[rank].1, "baseline stays on the block placement");
        assert!(!migrated[rank].1, "migrated placement must be non-uniform");
        assert_eq!(
            baseline[rank].0, migrated[rank].0,
            "rank {rank}: migrated run diverged from the unmigrated run"
        );
    }
}

/// The same generator + gate every rank of the skew soak uses: the
/// gate is rebuilt from the layer's own construction seed, so the
/// calibrated batches steer the *actual* routing inside the trainer.
fn skew_generator(cfg: &MoeConfig, calib_seed: u64) -> WorkloadGen {
    let mut gate_rng = TensorRng::seed_from(SEED);
    let gate = GShardGate::new(cfg.embed_dim, cfg.num_experts, cfg.top_k, &mut gate_rng);
    WorkloadGen::calibrate(&gate, cfg.embed_dim, calib_seed).unwrap()
}

struct SoakOutcome {
    migrations: usize,
    last: Option<MigrationDecision>,
    dropped: usize,
    checkpoint: LayerCheckpoint,
    /// max/mean position-load ratio of the final step's fleet-wide
    /// loads under (block placement, final placement).
    ratio_block: f64,
    ratio_final: f64,
    uniform: bool,
}

/// Zipf-skewed soak body: calibrated batches drive a real 4-rank
/// trainer with rebalancing enabled; returns what each rank saw.
fn skew_soak(n: usize, steps: usize, faults: Option<FaultInjector>) -> Vec<SoakOutcome> {
    let cfg = config(8);
    let mut w = world(n);
    if let Some(injector) = faults {
        w = w.with_faults(injector);
    }
    run_world_within(w, BUDGET, move |comm| {
        let rank = comm.rank();
        let mut trainer = ElasticTrainer::new(
            &cfg,
            comm,
            SEED,
            route_rng_for(rank),
            ElasticPolicy::default(),
        )
        .unwrap()
        .with_rebalancing(ImbalanceDetector::new(2, 1.25, 3));
        // Same calibration seed everywhere: the batches differ per rank
        // only through the shared generator's deterministic stream, so
        // every rank observes the same fleet-wide skew.
        let mut gen = skew_generator(&cfg, 17);
        let dist = Distribution::Zipf { s: 2.0 };
        let (_, t) = rank_data(&cfg, rank);
        let mut last_loads = vec![0.0f64; cfg.num_experts];
        for _ in 0..steps {
            let x = gen.next_batch(&dist, cfg.tokens()).unwrap();
            trainer.train_step(&x, &t, LR).unwrap();
            // A migration inside the step clears the saved routing (on
            // every rank alike), so sample loads only when it survives.
            if let Some(routing) = trainer.layer().last_routing() {
                let mut local: Vec<f32> =
                    routing.expert_loads().iter().map(|&l| l as f32).collect();
                trainer.comm().world_group().all_reduce(&mut local).unwrap();
                last_loads = local.iter().map(|&l| f64::from(l)).collect();
            }
        }
        let block = ExpertMap::block(cfg.num_experts, n).unwrap();
        SoakOutcome {
            migrations: trainer.migrations(),
            last: trainer.last_migration(),
            dropped: trainer.dropped_tokens(),
            ratio_block: ImbalanceDetector::ratio(&block, &last_loads),
            ratio_final: ImbalanceDetector::ratio(trainer.layer().expert_map(), &last_loads),
            uniform: trainer.layer().expert_map().is_uniform(),
            checkpoint: trainer.full_checkpoint().unwrap(),
        }
    })
}

/// **Skew soak.** Under a sharp Zipf workload the detector must drive
/// at least one migration, the final placement must carry a strictly
/// lower max/mean position load than the block placement would under
/// the same routing, and graceful degradation must never fire.
#[test]
fn zipf_skew_drives_a_migration_that_reduces_imbalance() {
    let outcomes = skew_soak(4, 12, None);
    let first = &outcomes[0];
    assert!(
        first.migrations >= 1,
        "sustained Zipf skew must trigger a migration"
    );
    assert!(
        !first.uniform,
        "a migration makes the placement non-uniform"
    );
    assert!(
        first.ratio_final < first.ratio_block,
        "migration must strictly reduce max/mean position load: \
         {} (final) vs {} (block)",
        first.ratio_final,
        first.ratio_block
    );
    for (rank, o) in outcomes.iter().enumerate() {
        assert_eq!(o.dropped, 0, "rank {rank}: no token may drop");
        assert_eq!(
            o.migrations, first.migrations,
            "rank {rank}: migration counts must agree (SPMD)"
        );
        assert_eq!(o.last, first.last, "rank {rank}: decisions must agree");
        assert_eq!(
            o.checkpoint, first.checkpoint,
            "rank {rank}: checkpoints must agree"
        );
    }
}

/// **Chaos+skew soak.** The same detector-driven soak with seeded
/// straggler (Delay) faults injected into the collectives: a late rank
/// exercises fence withdrawal/retry timing but must not change the
/// outcome — every run completes (the ci.sh watchdog turns a hang into
/// exit 124), ranks agree, and nothing drops.
#[test]
fn skew_soak_survives_straggler_chaos() {
    for seed in 0u64..4 {
        // Deterministic per-seed straggler schedule: two delays on one
        // rank, early and mid-run. Delay faults only — a Kill would
        // trigger eviction (a different protocol, soaked elsewhere) and
        // a DropPayload would violate the no-dropped-tokens property.
        let rank = (seed as usize) % 4;
        let injector = FaultInjector::new()
            .delay(rank, 3 + seed as usize, Duration::from_millis(30))
            .delay(rank, 20 + 2 * seed as usize, Duration::from_millis(50));
        let outcomes = skew_soak(4, 8, Some(injector));
        let first = &outcomes[0];
        for (r, o) in outcomes.iter().enumerate() {
            assert_eq!(o.dropped, 0, "seed {seed} rank {r}: no token may drop");
            assert_eq!(
                o.migrations, first.migrations,
                "seed {seed} rank {r}: migration counts must agree"
            );
            assert_eq!(
                o.checkpoint, first.checkpoint,
                "seed {seed} rank {r}: checkpoints must agree"
            );
        }
    }
}
