//! GPipe pipeline parallelism (Fig. 8's `N_PP = 2` experiment).
//!
//! The paper enables PP with GPipe \[15\]: the layer stack is split into
//! `N_PP` stages placed on disjoint sub-clusters, the batch is split
//! into micro-batches, all forwards run, then all backwards (the GPipe
//! flush). Each stage×micro-batch cell is priced by sub-simulating the
//! per-schedule iteration plan on the stage's layers, and the pipeline
//! timeline itself is then simulated with inter-stage activation
//! transfers on a point-to-point link.

use baselines::ScheduleKind;
use simnet::{Engine, TaskGraph, Testbed};

use crate::iteration::{build_iteration_graph, plan_iteration};
use crate::presets::ModelPreset;

/// Times of one stage's micro-batch work.
#[derive(Debug, Clone, Copy, PartialEq)]
struct StageTimes {
    forward: f64,
    backward: f64,
    /// Activation-transfer time to the next stage.
    transfer: f64,
}

/// Simulated makespan of forward-only or backward-only execution of
/// `layers` layers under `kind`.
fn phase_makespan(
    kind: ScheduleKind,
    testbed: &Testbed,
    preset: &ModelPreset,
    layers: usize,
    forward_only: bool,
) -> fsmoe::Result<f64> {
    let spec = preset.layer_spec(testbed)?;
    let plan = plan_iteration(kind, &testbed.costs, &spec, layers);
    let (graph, _) = if forward_only {
        // rebuild with zero backward layers: plan a forward-only stack
        let mut fwd_plan = plan;
        fwd_plan.layers = layers;
        fwd_plan.bwd_models.clear();
        fwd_plan.r_bwd.clear();
        fwd_plan.gar_in_moe.clear();
        fwd_plan.gar_with_dense.clear();
        fwd_plan.gar_tail.clear();
        build_iteration_graph(&fwd_plan)
    } else {
        build_iteration_graph(&plan)
    };
    Ok(Engine::new()
        .simulate(&graph)
        .expect("builder graphs simulate")
        .makespan())
}

/// One training iteration under GPipe with `n_pp` stages and
/// `micro_batches` micro-batches (the sequence is split across
/// micro-batches), ms.
///
/// # Errors
///
/// Returns configuration errors when the model does not divide across
/// stages or micro-batches.
pub fn gpipe_iteration_time(
    kind: ScheduleKind,
    testbed: &Testbed,
    preset: &ModelPreset,
    n_pp: usize,
    micro_batches: usize,
) -> fsmoe::Result<f64> {
    if n_pp == 0 || !preset.layers.is_multiple_of(n_pp) {
        return Err(fsmoe::MoeError::BadConfig {
            field: "n_pp",
            reason: format!("{} layers not divisible by {n_pp} stages", preset.layers),
        });
    }
    if micro_batches == 0 || !preset.seq_len.is_multiple_of(micro_batches) {
        return Err(fsmoe::MoeError::BadConfig {
            field: "micro_batches",
            reason: format!(
                "seq_len {} not divisible by {micro_batches} micro-batches",
                preset.seq_len
            ),
        });
    }
    let stage_nodes = (testbed.nodes / n_pp).max(1);
    let stage_testbed = testbed.with_nodes(stage_nodes);
    let micro = preset.clone().with_seq_len(preset.seq_len / micro_batches);
    let layers_per_stage = preset.layers / n_pp;

    let fwd = phase_makespan(kind, &stage_testbed, &micro, layers_per_stage, true)?;
    let full = phase_makespan(kind, &stage_testbed, &micro, layers_per_stage, false)?;
    let bwd = (full - fwd).max(0.0);
    // activation transfer: tokens × M × 4 bytes / MP shard over the
    // inter-node link
    let dims = ModelPreset::dims_for(&stage_testbed);
    let bytes = (micro.batch_size * micro.seq_len * micro.embed_dim) as f64 * 4.0 / dims.mp as f64;
    let times = StageTimes {
        forward: fwd,
        backward: bwd,
        transfer: stage_testbed.costs.a2a.time(bytes),
    };

    // Build the GPipe timeline: per-stage compute resources + p2p links.
    let mut graph = TaskGraph::new();
    let stages: Vec<_> = (0..n_pp)
        .map(|s| graph.add_resource(format!("stage{s}")))
        .collect();
    let links: Vec<_> = (0..n_pp.saturating_sub(1))
        .map(|s| graph.add_resource(format!("link{s}")))
        .collect();

    // forward wave
    let mut fwd_done = vec![vec![None; micro_batches]; n_pp];
    // j indexes two different stage rows of fwd_done, so enumerate
    // cannot replace it
    #[allow(clippy::needless_range_loop)]
    for j in 0..micro_batches {
        for s in 0..n_pp {
            let mut deps: Vec<simnet::TaskId> = Vec::new();
            if s > 0 {
                let xfer = graph.add_task(
                    format!("x{s}.{j}"),
                    links[s - 1],
                    times.transfer,
                    &[fwd_done[s - 1][j].expect("previous stage scheduled")],
                );
                deps.push(xfer);
            }
            let t = graph.add_task(format!("f{s}.{j}"), stages[s], times.forward, &deps);
            fwd_done[s][j] = Some(t);
        }
    }
    // backward wave (reverse stage order), after the flush
    let mut bwd_prev: Vec<Option<simnet::TaskId>> = vec![None; n_pp];
    for j in 0..micro_batches {
        for s in (0..n_pp).rev() {
            let mut deps = vec![fwd_done[s][micro_batches - 1].expect("forward scheduled")];
            if s + 1 < n_pp {
                let xfer = graph.add_task(
                    format!("gx{s}.{j}"),
                    links[s],
                    times.transfer,
                    &[bwd_prev[s + 1].expect("downstream backward scheduled")],
                );
                deps.push(xfer);
            }
            let t = graph.add_task(format!("b{s}.{j}"), stages[s], times.backward, &deps);
            bwd_prev[s] = Some(t);
        }
    }

    Ok(Engine::new()
        .simulate(&graph)
        .expect("builder graphs simulate")
        .makespan())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preset() -> ModelPreset {
        ModelPreset::gpt2_xl_moe().with_layers(4).with_seq_len(512)
    }

    #[test]
    fn gpipe_ordering_matches_schedules() {
        let tb = Testbed::a();
        let ds = gpipe_iteration_time(ScheduleKind::DsMoe, &tb, &preset(), 2, 4).unwrap();
        let fs = gpipe_iteration_time(ScheduleKind::FsMoe, &tb, &preset(), 2, 4).unwrap();
        assert!(fs < ds, "FSMoE {fs} vs DS-MoE {ds} under PP");
    }

    #[test]
    fn micro_batching_helps_once_work_amortises_startup() {
        // with enough work per micro-batch the bubble saving beats the
        // extra per-op startup costs; with too little it does not — both
        // regimes are physical
        let tb = Testbed::a();
        let big = ModelPreset::gpt2_xl_moe().with_layers(4).with_seq_len(2048);
        let t1 = gpipe_iteration_time(ScheduleKind::FsMoe, &tb, &big, 2, 1).unwrap();
        let t2 = gpipe_iteration_time(ScheduleKind::FsMoe, &tb, &big, 2, 2).unwrap();
        assert!(t2 < t1, "{t2} !< {t1}");

        let small = ModelPreset::gpt2_xl_moe().with_layers(4).with_seq_len(512);
        let s1 = gpipe_iteration_time(ScheduleKind::FsMoe, &tb, &small, 2, 1).unwrap();
        let s8 = gpipe_iteration_time(ScheduleKind::FsMoe, &tb, &small, 2, 8).unwrap();
        assert!(s8 > s1, "startup-dominated micro-batching should lose");
    }

    #[test]
    fn single_stage_equals_plain_iteration_roughly() {
        let tb = Testbed::a();
        let p = preset();
        let pp = gpipe_iteration_time(ScheduleKind::Tutel, &tb, &p, 1, 1).unwrap();
        let flat = crate::iteration::iteration_time(ScheduleKind::Tutel, &tb, &p).unwrap();
        assert!((pp - flat).abs() / flat < 0.05, "pp {pp} vs flat {flat}");
    }

    #[test]
    fn validation_errors() {
        let tb = Testbed::a();
        let p = preset(); // 4 layers
        assert!(gpipe_iteration_time(ScheduleKind::FsMoe, &tb, &p, 3, 2).is_err());
        assert!(gpipe_iteration_time(ScheduleKind::FsMoe, &tb, &p, 2, 0).is_err());
        assert!(gpipe_iteration_time(ScheduleKind::FsMoe, &tb, &p, 0, 2).is_err());
    }
}
