//! A distributed training step with an iteration-level span tree.
//!
//! [`dist_train_step`] is the smallest complete "one training
//! iteration" over a [`DistMoeLayer`]: MSE loss against a regression
//! target, backward, SGD update. Each call opens a `models/train_step`
//! span so an exported trace nests models → fsmoe → collectives — the
//! top of the span taxonomy DESIGN.md §7 documents and the
//! `trace_training_step` example renders.

use fsmoe::dist::DistMoeLayer;
use fsmoe::Result;
use tensor::{Tensor, TensorRng};

/// Runs one SGD step of `layer` against an MSE target; returns the loss
/// before the step.
///
/// The step is spanned as `models/train_step` (with the loss and the
/// layer's rank as attributes) around the layer's own
/// `fsmoe/moe.forward` and `fsmoe/moe.backward` spans, plus a
/// `models/update` span for the parameter update.
///
/// # Errors
///
/// Propagates layer failures (shape errors, collective faults).
pub fn dist_train_step(
    layer: &mut DistMoeLayer,
    input: &Tensor,
    target: &Tensor,
    lr: f32,
    route_rng: &mut TensorRng,
) -> Result<f32> {
    let mut step_span = obs::span(obs::names::CAT_MODELS, obs::names::SPAN_TRAIN_STEP);
    let y = layer.forward(input, route_rng)?;
    let err = y.sub(target)?;
    let loss = err.map(|v| v * v).mean();
    let grad = err.scale(2.0 / y.num_elements() as f32);
    let grads = layer.backward(&grad)?;
    {
        let _update = obs::span(obs::names::CAT_MODELS, obs::names::SPAN_UPDATE);
        layer.apply_grads(&grads, lr)?;
    }
    step_span.attr("loss", loss);
    Ok(loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::{run_world_within, CommWorld, HybridTopology, ParallelDims};
    use fsmoe::config::MoeConfig;
    use std::time::Duration;

    #[test]
    fn dist_step_reduces_loss() {
        let cfg = MoeConfig::builder()
            .batch_size(1)
            .seq_len(6)
            .embed_dim(8)
            .hidden_dim(16)
            .num_experts(2)
            .top_k(1)
            .no_drop()
            .build()
            .unwrap();
        let losses = run_world_within(CommWorld::new(2), Duration::from_secs(30), move |comm| {
            let topo = HybridTopology::new(
                1,
                2,
                ParallelDims {
                    dp: 2,
                    mp: 1,
                    ep: 2,
                    esp: 1,
                },
            )
            .unwrap();
            let mut layer = DistMoeLayer::gshard(&cfg, &comm, &topo, 9).unwrap();
            let mut rng = TensorRng::seed_from(100 + comm.rank() as u64);
            let x = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
            let target = rng.normal(&[cfg.tokens(), cfg.embed_dim], 0.0, 1.0);
            let mut route_rng = TensorRng::seed_from(0);
            let first = dist_train_step(&mut layer, &x, &target, 0.2, &mut route_rng).unwrap();
            let mut last = first;
            for _ in 0..6 {
                last = dist_train_step(&mut layer, &x, &target, 0.2, &mut route_rng).unwrap();
            }
            (first, last)
        });
        for (first, last) in losses {
            assert!(last < first, "loss should fall: {first} → {last}");
        }
    }
}
