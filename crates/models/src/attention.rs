//! Real multi-head self-attention (data plane).
//!
//! The timing experiments only need attention's *cost* (see
//! [`crate::layerspec`]), but the paper's end-to-end runs train real
//! transformers — so the reproduction also carries a fully functional
//! multi-head attention with a hand-written backward pass, used by
//! [`crate::block::TransformerBlock`] to train an actual MoE
//! transformer on the CPU data plane.
//!
//! Shapes follow the single-sequence convention of the rest of the data
//! plane: the input is `(T, M)` tokens; heads split the embedding into
//! `h` slices of width `d = M/h`.

use tensor::{grad, Tensor, TensorRng};

use fsmoe::{MoeError, Result};

/// Saved forward state for the backward pass.
#[derive(Debug, Clone)]
pub struct AttentionState {
    x: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Per-head attention probabilities, each `(T, T)`.
    probs: Vec<Tensor>,
    /// Concatenated per-head context `(T, M)` before the output
    /// projection.
    context: Tensor,
}

/// Gradients produced by [`MultiHeadAttention::backward`].
#[derive(Debug, Clone)]
pub struct AttentionGrads {
    /// Gradient with respect to the block input.
    pub input: Tensor,
    /// Gradients of `[w_q, w_k, w_v, w_o]`.
    pub weights: Vec<Tensor>,
}

/// Multi-head scaled-dot-product self-attention with optional causal
/// masking.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    embed_dim: usize,
    heads: usize,
    causal: bool,
    w_q: Tensor,
    w_k: Tensor,
    w_v: Tensor,
    w_o: Tensor,
}

impl MultiHeadAttention {
    /// Creates an attention module with Xavier-initialised projections.
    ///
    /// # Errors
    ///
    /// Returns an error when `heads` does not divide `embed_dim`.
    pub fn new(embed_dim: usize, heads: usize, rng: &mut TensorRng) -> Result<Self> {
        if heads == 0 || !embed_dim.is_multiple_of(heads) {
            return Err(MoeError::BadConfig {
                field: "heads",
                reason: format!("{heads} must divide embed_dim {embed_dim}"),
            });
        }
        Ok(MultiHeadAttention {
            embed_dim,
            heads,
            causal: false,
            w_q: rng.xavier(embed_dim, embed_dim),
            w_k: rng.xavier(embed_dim, embed_dim),
            w_v: rng.xavier(embed_dim, embed_dim),
            w_o: rng.xavier(embed_dim, embed_dim),
        })
    }

    /// Enables the causal (autoregressive) mask.
    pub fn causal(mut self) -> Self {
        self.causal = true;
        self
    }

    /// Head width `d = M/h`.
    pub fn head_dim(&self) -> usize {
        self.embed_dim / self.heads
    }

    /// The projection weights `[w_q, w_k, w_v, w_o]`.
    pub fn weights(&self) -> Vec<&Tensor> {
        vec![&self.w_q, &self.w_k, &self.w_v, &self.w_o]
    }

    /// Runs attention on a `(T, M)` input.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, AttentionState)> {
        if x.rank() != 2 || x.dims()[1] != self.embed_dim {
            return Err(MoeError::BadInput {
                expected: format!("(tokens, {})", self.embed_dim),
                actual: x.dims().to_vec(),
            });
        }
        let t = x.dims()[0];
        let d = self.head_dim();
        let scale = 1.0 / (d as f32).sqrt();

        let q = x.matmul(&self.w_q)?;
        let k = x.matmul(&self.w_k)?;
        let v = x.matmul(&self.w_v)?;

        let mut context = Tensor::zeros(&[t, self.embed_dim]);
        let mut probs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (lo, hi) = (h * d, (h + 1) * d);
            let qh = q.slice_cols(lo, hi)?;
            let kh = k.slice_cols(lo, hi)?;
            let vh = v.slice_cols(lo, hi)?;
            let mut scores = qh.matmul(&kh.transpose()?)?.scale(scale);
            if self.causal {
                for i in 0..t {
                    for j in (i + 1)..t {
                        scores.data_mut()[i * t + j] = f32::NEG_INFINITY;
                    }
                }
            }
            let p = scores.softmax()?;
            let ctx_h = p.matmul(&vh)?; // (T, d)
            for i in 0..t {
                context.data_mut()[i * self.embed_dim + lo..i * self.embed_dim + hi]
                    .copy_from_slice(&ctx_h.data()[i * d..(i + 1) * d]);
            }
            probs.push(p);
        }
        let y = context.matmul(&self.w_o)?;
        Ok((
            y,
            AttentionState {
                x: x.clone(),
                q,
                k,
                v,
                probs,
                context,
            },
        ))
    }

    /// Backpropagates through the saved forward state.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch with the saved state.
    pub fn backward(&self, grad_y: &Tensor, state: &AttentionState) -> Result<AttentionGrads> {
        let t = state.x.dims()[0];
        let d = self.head_dim();
        let m = self.embed_dim;
        let scale = 1.0 / (d as f32).sqrt();

        // output projection
        let (grad_context, grad_wo) = grad::matmul_backward(grad_y, &state.context, &self.w_o)?;

        let mut grad_q = Tensor::zeros(&[t, m]);
        let mut grad_k = Tensor::zeros(&[t, m]);
        let mut grad_v = Tensor::zeros(&[t, m]);
        for h in 0..self.heads {
            let (lo, hi) = (h * d, (h + 1) * d);
            let gctx_h = grad_context.slice_cols(lo, hi)?;
            let qh = state.q.slice_cols(lo, hi)?;
            let kh = state.k.slice_cols(lo, hi)?;
            let vh = state.v.slice_cols(lo, hi)?;
            let p = &state.probs[h];

            // ctx = P · V
            let grad_p = gctx_h.matmul(&vh.transpose()?)?;
            let grad_vh = p.transpose()?.matmul(&gctx_h)?;
            // P = softmax(S); masked entries have p = 0 so their score
            // gradient vanishes automatically
            let grad_scores = grad::softmax_backward(&grad_p, p)?.scale(scale);
            let grad_qh = grad_scores.matmul(&kh)?;
            let grad_kh = grad_scores.transpose()?.matmul(&qh)?;

            for i in 0..t {
                grad_q.data_mut()[i * m + lo..i * m + hi]
                    .copy_from_slice(&grad_qh.data()[i * d..(i + 1) * d]);
                grad_k.data_mut()[i * m + lo..i * m + hi]
                    .copy_from_slice(&grad_kh.data()[i * d..(i + 1) * d]);
                grad_v.data_mut()[i * m + lo..i * m + hi]
                    .copy_from_slice(&grad_vh.data()[i * d..(i + 1) * d]);
            }
        }

        let (gx_q, grad_wq) = grad::matmul_backward(&grad_q, &state.x, &self.w_q)?;
        let (gx_k, grad_wk) = grad::matmul_backward(&grad_k, &state.x, &self.w_k)?;
        let (gx_v, grad_wv) = grad::matmul_backward(&grad_v, &state.x, &self.w_v)?;
        let input = gx_q.add(&gx_k)?.add(&gx_v)?;
        Ok(AttentionGrads {
            input,
            weights: vec![grad_wq, grad_wk, grad_wv, grad_wo],
        })
    }

    /// Applies an SGD step to the four projections.
    ///
    /// # Errors
    ///
    /// Returns an error when `grads` has the wrong arity.
    pub fn apply_grads(&mut self, grads: &[Tensor], lr: f32) -> Result<()> {
        let [gq, gk, gv, go] = grads else {
            return Err(MoeError::BadInput {
                expected: "4 gradient tensors".into(),
                actual: vec![grads.len()],
            });
        };
        self.w_q = self.w_q.sub(&gq.scale(lr))?;
        self.w_k = self.w_k.sub(&gk.scale(lr))?;
        self.w_v = self.w_v.sub(&gv.scale(lr))?;
        self.w_o = self.w_o.sub(&go.scale(lr))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_input(attn: &MultiHeadAttention, x: &Tensor) -> Tensor {
        let h = 1e-2f32;
        let mut out = Tensor::zeros(x.dims());
        for i in 0..x.num_elements() {
            let mut plus = x.clone();
            plus.data_mut()[i] += h;
            let mut minus = x.clone();
            minus.data_mut()[i] -= h;
            let yp = attn.forward(&plus).unwrap().0.sum();
            let ym = attn.forward(&minus).unwrap().0.sum();
            out.data_mut()[i] = (yp - ym) / (2.0 * h);
        }
        out
    }

    #[test]
    fn output_shape_and_finiteness() {
        let mut rng = TensorRng::seed_from(1);
        let attn = MultiHeadAttention::new(8, 2, &mut rng).unwrap();
        let x = rng.normal(&[5, 8], 0.0, 1.0);
        let (y, _) = attn.forward(&x).unwrap();
        assert_eq!(y.dims(), &[5, 8]);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn attention_rows_are_distributions() {
        let mut rng = TensorRng::seed_from(2);
        let attn = MultiHeadAttention::new(8, 2, &mut rng).unwrap();
        let x = rng.normal(&[6, 8], 0.0, 1.0);
        let (_, state) = attn.forward(&x).unwrap();
        for p in &state.probs {
            for row in p.data().chunks(6) {
                assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn causal_mask_zeroes_future_positions() {
        let mut rng = TensorRng::seed_from(3);
        let attn = MultiHeadAttention::new(4, 1, &mut rng).unwrap().causal();
        let x = rng.normal(&[5, 4], 0.0, 1.0);
        let (_, state) = attn.forward(&x).unwrap();
        let p = &state.probs[0];
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_eq!(p.at(&[i, j]).unwrap(), 0.0, "({i},{j}) must be masked");
            }
        }
    }

    #[test]
    fn causal_prefix_invariance() {
        // with a causal mask, output at position i depends only on the
        // prefix — changing a later token must not change earlier rows
        let mut rng = TensorRng::seed_from(4);
        let attn = MultiHeadAttention::new(4, 2, &mut rng).unwrap().causal();
        let x = rng.normal(&[4, 4], 0.0, 1.0);
        let (y1, _) = attn.forward(&x).unwrap();
        let mut x2 = x.clone();
        x2.data_mut()[3 * 4] += 5.0; // perturb the last token
        let (y2, _) = attn.forward(&x2).unwrap();
        for i in 0..3 {
            for j in 0..4 {
                assert!((y1.at(&[i, j]).unwrap() - y2.at(&[i, j]).unwrap()).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = TensorRng::seed_from(5);
        for causal in [false, true] {
            let attn = MultiHeadAttention::new(6, 2, &mut rng).unwrap();
            let attn = if causal { attn.causal() } else { attn };
            let x = rng.normal(&[4, 6], 0.0, 1.0);
            let (y, state) = attn.forward(&x).unwrap();
            let grads = attn.backward(&Tensor::ones(y.dims()), &state).unwrap();
            let fd = finite_diff_input(&attn, &x);
            assert!(
                grads.input.allclose(&fd, 5e-2),
                "causal={causal}: max diff {}",
                grads.input.max_abs_diff(&fd).unwrap()
            );
        }
    }

    #[test]
    fn weight_grads_match_finite_difference() {
        let mut rng = TensorRng::seed_from(6);
        let mut attn = MultiHeadAttention::new(4, 2, &mut rng).unwrap();
        let x = rng.normal(&[3, 4], 0.0, 1.0);
        let (y, state) = attn.forward(&x).unwrap();
        let grads = attn.backward(&Tensor::ones(y.dims()), &state).unwrap();
        // nudge w_q[0] via apply_grads
        let h = 1e-2f32;
        let mut delta: Vec<Tensor> = attn
            .weights()
            .iter()
            .map(|w| Tensor::zeros(w.dims()))
            .collect();
        delta[0].data_mut()[0] = 1.0;
        attn.apply_grads(&delta, -h).unwrap();
        let lp = attn.forward(&x).unwrap().0.sum();
        attn.apply_grads(&delta, 2.0 * h).unwrap();
        let lm = attn.forward(&x).unwrap().0.sum();
        attn.apply_grads(&delta, -h).unwrap();
        let fd = (lp - lm) / (2.0 * h);
        assert!((grads.weights[0].data()[0] - fd).abs() < 5e-2);
    }

    #[test]
    fn construction_validation() {
        let mut rng = TensorRng::seed_from(7);
        assert!(MultiHeadAttention::new(8, 3, &mut rng).is_err());
        assert!(MultiHeadAttention::new(8, 0, &mut rng).is_err());
        let attn = MultiHeadAttention::new(8, 4, &mut rng).unwrap();
        assert_eq!(attn.head_dim(), 2);
        assert!(attn.forward(&Tensor::zeros(&[2, 5])).is_err());
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut rng = TensorRng::seed_from(8);
        let mut attn = MultiHeadAttention::new(6, 2, &mut rng).unwrap();
        let x = rng.normal(&[5, 6], 0.0, 1.0);
        let y0 = attn.forward(&x).unwrap().0.sum();
        for _ in 0..3 {
            let (y, state) = attn.forward(&x).unwrap();
            let grads = attn.backward(&Tensor::ones(y.dims()), &state).unwrap();
            attn.apply_grads(&grads.weights, 0.05).unwrap();
        }
        let y1 = attn.forward(&x).unwrap().0.sum();
        assert!(y1 < y0);
    }
}
