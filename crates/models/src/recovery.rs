//! Checkpoint-based training recovery.
//!
//! Production MoE training survives rank failures by rolling back to the
//! last consistent checkpoint and replaying. [`RecoveryDriver`] packages
//! that protocol for a training loop over an
//! [`MoeLayer`](fsmoe::layer::MoeLayer):
//!
//! * every `interval` steps it snapshots the layer's
//!   [`LayerCheckpoint`] *and* the routing RNG state — both are needed
//!   for exact replay, because gates consume randomness every step;
//! * when a step fails (collective fault, poisoned group, corrupted
//!   state), [`RecoveryDriver::recover`] restores weights, RNG, and the
//!   step counter to the snapshot and the loop resumes from there;
//! * with a checkpoint directory configured, snapshots also go to disk
//!   via the atomic writer in `fsmoe::checkpoint`, and recovery restores
//!   from the on-disk copy — exercising the path a process restart
//!   would take.
//!
//! The recovery test proves the property that makes this trustworthy:
//! a run that faults and recovers ends with weights **bit-identical**
//! to a run that never faulted.

use std::path::PathBuf;

use fsmoe::checkpoint::LayerCheckpoint;
use fsmoe::layer::MoeLayer;
use fsmoe::{MoeError, Result};
use tensor::{Tensor, TensorRng};

/// A consistent training snapshot: everything needed for exact replay.
#[derive(Debug, Clone)]
struct Snapshot {
    step: usize,
    checkpoint: LayerCheckpoint,
    route_rng: TensorRng,
}

/// A fault-tolerant training loop driver: snapshot every `interval`
/// steps, roll back on failure.
#[derive(Debug)]
pub struct RecoveryDriver {
    layer: MoeLayer,
    route_rng: TensorRng,
    interval: usize,
    step: usize,
    snapshot: Snapshot,
    checkpoint_dir: Option<PathBuf>,
    recoveries: usize,
}

impl RecoveryDriver {
    /// Wraps `layer` with snapshot-every-`interval`-steps recovery. An
    /// initial snapshot is taken immediately, so recovery is always
    /// possible.
    ///
    /// # Panics
    ///
    /// Panics when `interval` is zero.
    pub fn new(layer: MoeLayer, route_rng: TensorRng, interval: usize) -> Self {
        assert!(interval > 0, "snapshot interval must be positive");
        let snapshot = Snapshot {
            step: 0,
            checkpoint: layer.checkpoint(),
            route_rng: route_rng.clone(),
        };
        RecoveryDriver {
            layer,
            route_rng,
            interval,
            step: 0,
            snapshot,
            checkpoint_dir: None,
            recoveries: 0,
        }
    }

    /// Also persists every snapshot to `dir` (atomically) and restores
    /// from the on-disk copy during recovery, as a restarted process
    /// would.
    #[must_use]
    pub fn with_checkpoint_dir(mut self, dir: PathBuf) -> Self {
        self.checkpoint_dir = Some(dir);
        self
    }

    /// The wrapped layer.
    pub fn layer(&self) -> &MoeLayer {
        &self.layer
    }

    /// Steps completed since construction (rolled back on recovery).
    pub fn current_step(&self) -> usize {
        self.step
    }

    /// The step the latest snapshot was taken at.
    pub fn last_snapshot_step(&self) -> usize {
        self.snapshot.step
    }

    /// How many times [`RecoveryDriver::recover`] has run.
    pub fn recoveries(&self) -> usize {
        self.recoveries
    }

    fn snapshot_path(&self, step: usize) -> Option<PathBuf> {
        self.checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("step-{step}.json")))
    }

    fn take_snapshot(&mut self) -> Result<()> {
        let mut snap_span = obs::span(obs::names::CAT_MODELS, obs::names::SPAN_SNAPSHOT);
        snap_span.attr("step", self.step);
        let checkpoint = self.layer.checkpoint();
        if let Some(path) = self.snapshot_path(self.step) {
            checkpoint.save(&path)?;
        }
        self.snapshot = Snapshot {
            step: self.step,
            checkpoint,
            route_rng: self.route_rng.clone(),
        };
        Ok(())
    }

    /// Runs one SGD training step (forward, unit output gradient,
    /// backward, update), snapshotting first when the step counter is on
    /// the interval.
    ///
    /// On failure the layer and RNG may hold partial step state — call
    /// [`RecoveryDriver::recover`] before continuing.
    ///
    /// # Errors
    ///
    /// Propagates layer failures (shape errors, collective faults,
    /// checkpoint I/O).
    pub fn step(&mut self, input: &Tensor, lr: f32) -> Result<Tensor> {
        let mut step_span = obs::span(obs::names::CAT_MODELS, obs::names::SPAN_TRAIN_STEP);
        step_span.attr("step", self.step);
        if self.step.is_multiple_of(self.interval) {
            self.take_snapshot()?;
        }
        let output = self.layer.forward(input, &mut self.route_rng)?;
        let grads = self.layer.backward(&Tensor::ones(output.dims()))?;
        self.layer.apply_grads(&grads, lr)?;
        self.step += 1;
        Ok(output)
    }

    /// Rolls back to the latest snapshot: weights, RNG stream, and step
    /// counter. Returns the step training resumes from.
    ///
    /// With a checkpoint directory configured, recovery restores from
    /// the on-disk copy (the restart path) when one exists, falling back
    /// to the in-memory snapshot when it does not — e.g. a fault before
    /// the first [`RecoveryDriver::step`] has persisted anything.
    ///
    /// # Errors
    ///
    /// Returns checkpoint I/O or validation errors when an on-disk
    /// snapshot exists but is unreadable or corrupt (in-memory recovery
    /// cannot fail).
    pub fn recover(&mut self) -> Result<usize> {
        let mut recover_span = obs::span(obs::names::CAT_MODELS, obs::names::SPAN_RECOVER);
        recover_span.attr("to_step", self.snapshot.step);
        let checkpoint = match self.snapshot_path(self.snapshot.step) {
            // Restore from disk when a persisted copy exists — the
            // restart path. The atomic writer guarantees the file is
            // never torn; a missing file means no snapshot has been
            // persisted yet, so the in-memory one is the truth.
            Some(path) if path.exists() => LayerCheckpoint::load(&path)?,
            _ => self.snapshot.checkpoint.clone(),
        };
        if checkpoint != self.snapshot.checkpoint {
            return Err(MoeError::CorruptCheckpoint {
                reason: format!(
                    "on-disk snapshot for step {} disagrees with memory",
                    self.snapshot.step
                ),
            });
        }
        self.layer.restore(&checkpoint)?;
        self.route_rng = self.snapshot.route_rng.clone();
        self.step = self.snapshot.step;
        self.recoveries += 1;
        Ok(self.step)
    }
}
