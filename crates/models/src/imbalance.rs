//! Sustained-skew detection over the `moe.expert_load` signal.
//!
//! The [`ImbalanceDetector`] watches per-expert token loads (summed to
//! per-*position* loads through the live [`ExpertMap`]) across a
//! sliding window of steps. When the max/mean position-load ratio stays
//! above a threshold for a full window, it emits a
//! [`MigrationDecision`]: move one hot expert from the most loaded
//! position to the least loaded one — the input to eviction-free
//! migration ([`fsmoe::dist::DistMoeLayer::migrate`]).
//!
//! Every rule breaks ties by lowest index and consumes only data that
//! is identical on all ranks (all-reduced loads, the shared map), so in
//! an SPMD run every rank computes the *same* decision at the *same*
//! step — a requirement for the world-wide migration fence to line up.

use fsmoe::reshard::ExpertMap;

/// A concrete "move this expert" plan emitted on sustained skew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationDecision {
    /// Global expert id to move.
    pub expert: usize,
    /// EP position currently hosting it (the hot position).
    pub from: usize,
    /// EP position to move it to (the cold position).
    pub to: usize,
}

/// Sliding-window detector for sustained expert-load imbalance.
#[derive(Debug, Clone)]
pub struct ImbalanceDetector {
    /// Consecutive over-threshold steps required before deciding.
    window: usize,
    /// Max/mean position-load ratio that counts as skewed.
    threshold: f64,
    /// Steps to stay quiet after a decision (lets the moved load
    /// settle before re-evaluating).
    cooldown: usize,
    /// Recent per-expert load vectors, oldest first (≤ `window`).
    history: Vec<Vec<f64>>,
    /// Consecutive steps the ratio exceeded the threshold.
    sustained: usize,
    /// Remaining quiet steps after the last decision.
    quiet: usize,
}

impl ImbalanceDetector {
    /// A detector that fires after `window` consecutive steps above
    /// `threshold`, then holds off for `cooldown` steps. `window` and
    /// `threshold` are clamped to ≥ 1 / ≥ 1.0.
    #[must_use]
    pub fn new(window: usize, threshold: f64, cooldown: usize) -> Self {
        ImbalanceDetector {
            window: window.max(1),
            threshold: threshold.max(1.0),
            cooldown,
            history: Vec::new(),
            sustained: 0,
            quiet: 0,
        }
    }

    /// Max/mean ratio over per-position loads (1.0 = perfectly even).
    fn position_ratio(map: &ExpertMap, expert_loads: &[f64]) -> (Vec<f64>, f64) {
        let per_position: Vec<f64> = (0..map.n_ep())
            .map(|p| map.experts_on(p).iter().map(|&e| expert_loads[e]).sum())
            .collect();
        let total: f64 = per_position.iter().sum();
        let mean = total / per_position.len() as f64;
        let max = per_position.iter().copied().fold(0.0f64, f64::max);
        let ratio = if total > 0.0 { max / mean } else { 1.0 };
        (per_position, ratio)
    }

    /// Feeds one step of (all-reduced) per-expert loads. Returns a
    /// migration decision once skew has been sustained for a full
    /// window and a strictly-better placement exists.
    pub fn observe(&mut self, map: &ExpertMap, expert_loads: &[f64]) -> Option<MigrationDecision> {
        self.observe_excluding(map, expert_loads, &[])
    }

    /// Like [`observe`](Self::observe), but never targets a position in
    /// `banned` as the migration destination — the hook health
    /// quarantine uses to keep rebalancing from piling load back onto a
    /// slow rank (the banned list must be identical on all ranks).
    pub fn observe_excluding(
        &mut self,
        map: &ExpertMap,
        expert_loads: &[f64],
        banned: &[usize],
    ) -> Option<MigrationDecision> {
        let (_, ratio) = Self::position_ratio(map, expert_loads);
        obs::set_gauge(obs::names::MOE_IMBALANCE_RATIO, ratio);

        self.history.push(expert_loads.to_vec());
        if self.history.len() > self.window {
            self.history.remove(0);
        }
        if self.quiet > 0 {
            self.quiet -= 1;
            self.sustained = 0;
            return None;
        }
        if ratio > self.threshold {
            self.sustained += 1;
        } else {
            self.sustained = 0;
        }
        if self.sustained < self.window {
            return None;
        }

        // Window-averaged loads smooth out single-step spikes.
        let mut avg = vec![0.0f64; expert_loads.len()];
        for step in &self.history {
            for (a, &l) in avg.iter_mut().zip(step) {
                *a += l;
            }
        }
        let steps = self.history.len() as f64;
        for a in &mut avg {
            *a /= steps;
        }

        let decision = Self::plan(map, &avg, banned);
        if decision.is_some() {
            self.sustained = 0;
            self.quiet = self.cooldown;
        }
        decision
    }

    /// Picks (expert, from, to): hot position's heaviest movable expert
    /// whose move strictly lowers the projected max position load.
    /// Positions in `banned` are never chosen as the destination.
    /// Deterministic: every tie breaks to the lowest index.
    fn plan(map: &ExpertMap, avg_loads: &[f64], banned: &[usize]) -> Option<MigrationDecision> {
        let per_position: Vec<f64> = (0..map.n_ep())
            .map(|p| map.experts_on(p).iter().map(|&e| avg_loads[e]).sum())
            .collect();
        let hot = per_position
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))?
            .0;
        let cold = per_position
            .iter()
            .enumerate()
            .filter(|(p, _)| !banned.contains(p))
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))?
            .0;
        if hot == cold {
            return None;
        }
        // A position must keep ≥ 1 expert (migration never empties a
        // position), so a single-expert hot spot cannot be split.
        let residents = map.experts_on(hot);
        if residents.len() < 2 {
            return None;
        }
        let mut candidates: Vec<usize> = residents.to_vec();
        candidates.sort_by(|&a, &b| avg_loads[b].total_cmp(&avg_loads[a]).then(a.cmp(&b)));
        let current_max = per_position[hot];
        for expert in candidates {
            let moved = avg_loads[expert];
            let projected = per_position
                .iter()
                .enumerate()
                .map(|(p, &l)| {
                    if p == hot {
                        l - moved
                    } else if p == cold {
                        l + moved
                    } else {
                        l
                    }
                })
                .fold(0.0f64, f64::max);
            if projected < current_max {
                return Some(MigrationDecision {
                    expert,
                    from: hot,
                    to: cold,
                });
            }
        }
        None
    }

    /// Current max/mean position-load ratio for `expert_loads` under
    /// `map` (stateless helper for tests and reporting).
    #[must_use]
    pub fn ratio(map: &ExpertMap, expert_loads: &[f64]) -> f64 {
        Self::position_ratio(map, expert_loads).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(experts: usize, positions: usize) -> ExpertMap {
        ExpertMap::block(experts, positions).unwrap()
    }

    #[test]
    fn balanced_loads_never_fire() {
        let map = block(4, 2);
        let mut d = ImbalanceDetector::new(2, 1.5, 0);
        for _ in 0..10 {
            assert_eq!(d.observe(&map, &[10.0, 10.0, 10.0, 10.0]), None);
        }
    }

    #[test]
    fn sustained_skew_fires_after_the_window() {
        let map = block(4, 2);
        let mut d = ImbalanceDetector::new(3, 1.2, 0);
        let skewed = [40.0, 10.0, 5.0, 5.0];
        assert_eq!(d.observe(&map, &skewed), None);
        assert_eq!(d.observe(&map, &skewed), None);
        let got = d.observe(&map, &skewed).expect("third step should fire");
        // Position 0 holds {0, 1} at 50 vs position 1 at 10. Moving
        // expert 0 just relocates the hot spot (projected max 50), so
        // the planner falls through to expert 1: projected max 40 < 50.
        assert_eq!(
            got,
            MigrationDecision {
                expert: 1,
                from: 0,
                to: 1
            }
        );
    }

    #[test]
    fn transient_spikes_reset_the_streak() {
        let map = block(4, 2);
        let mut d = ImbalanceDetector::new(2, 1.2, 0);
        let skewed = [40.0, 10.0, 5.0, 5.0];
        let even = [10.0, 10.0, 10.0, 10.0];
        assert_eq!(d.observe(&map, &skewed), None);
        assert_eq!(d.observe(&map, &even), None);
        assert_eq!(d.observe(&map, &skewed), None, "streak restarted");
    }

    #[test]
    fn cooldown_suppresses_back_to_back_decisions() {
        let map = block(4, 2);
        let mut d = ImbalanceDetector::new(1, 1.2, 3);
        let skewed = [40.0, 10.0, 5.0, 5.0];
        assert!(d.observe(&map, &skewed).is_some());
        for _ in 0..3 {
            assert_eq!(d.observe(&map, &skewed), None, "cooldown");
        }
        assert!(d.observe(&map, &skewed).is_some());
    }

    #[test]
    fn single_expert_hot_position_cannot_split() {
        let map = ExpertMap::from_lists(vec![vec![0], vec![1, 2]]).unwrap();
        let mut d = ImbalanceDetector::new(1, 1.2, 0);
        // Position 0 = {0} at 90; moving its only expert would empty it.
        assert_eq!(d.observe(&map, &[90.0, 5.0, 5.0]), None);
    }

    #[test]
    fn decision_never_projects_a_worse_max() {
        // Hot position {0,1} with one enormous expert: moving either
        // would just relocate the hot spot, so refuse.
        let map = block(4, 2);
        let mut d = ImbalanceDetector::new(1, 1.1, 0);
        assert_eq!(d.observe(&map, &[100.0, 0.0, 1.0, 1.0]), None);
    }

    #[test]
    fn moves_lighter_expert_when_heaviest_cannot_improve() {
        // Position 0 = {0,1} at 100 + 30; position 1 = {2,3} at 1 + 1.
        // Moving expert 0 projects max 102 > 130? No: 100+2=102 < 130,
        // so the heaviest wins here — craft loads where it doesn't.
        let map = block(4, 2);
        let mut d = ImbalanceDetector::new(1, 1.1, 0);
        // {0,1} = 60+50=110, {2,3} = 0+0. Moving 0 → max(50, 60)=60;
        // that improves, heaviest is chosen.
        let got = d.observe(&map, &[60.0, 50.0, 0.0, 0.0]).unwrap();
        assert_eq!(got.expert, 0);
        // {0,1} = 90+20=110, {2,3}=0. Moving 0 → max(20, 90)=90 < 110 ✓
        // heaviest still wins. Now make heaviest not improve:
        // {0,1} = 90+20, {2,3} = 80. Moving 0 → cold becomes 170 ≥ 110;
        // moving 1 → hot 90, cold 100 < 110 ✓.
        let map2 = ExpertMap::from_lists(vec![vec![0, 1], vec![2]]).unwrap();
        let mut d2 = ImbalanceDetector::new(1, 1.1, 0);
        let got2 = d2.observe(&map2, &[90.0, 20.0, 80.0]).unwrap();
        assert_eq!(
            got2,
            MigrationDecision {
                expert: 1,
                from: 0,
                to: 1
            }
        );
    }

    #[test]
    fn excluded_positions_are_never_destinations() {
        // Two positions, cold one quarantined: no healthy destination
        // remains, so the planner refuses.
        let map = block(4, 2);
        let mut d = ImbalanceDetector::new(1, 1.2, 0);
        assert_eq!(
            d.observe_excluding(&map, &[40.0, 10.0, 5.0, 5.0], &[1]),
            None
        );
        // Three positions: the coldest (1) is banned, so the move
        // redirects to the next-coldest healthy position (2).
        let map3 = ExpertMap::from_lists(vec![vec![0, 1], vec![2], vec![3]]).unwrap();
        let mut d3 = ImbalanceDetector::new(1, 1.1, 0);
        let got = d3
            .observe_excluding(&map3, &[90.0, 20.0, 0.0, 5.0], &[1])
            .unwrap();
        assert_eq!(got.from, 0);
        assert_eq!(got.to, 2, "banned cold position must be skipped");
    }

    #[test]
    fn ratio_reports_one_for_balance_and_scales_with_skew() {
        let map = block(4, 2);
        let even = ImbalanceDetector::ratio(&map, &[1.0, 1.0, 1.0, 1.0]);
        assert!((even - 1.0).abs() < 1e-12);
        let skew = ImbalanceDetector::ratio(&map, &[3.0, 0.0, 0.0, 1.0]);
        assert!((skew - 1.5).abs() < 1e-12, "{skew}");
        assert!(ImbalanceDetector::ratio(&map, &[0.0; 4]) == 1.0);
    }

    #[test]
    fn non_uniform_maps_sum_loads_per_position() {
        let map = ExpertMap::from_lists(vec![vec![0], vec![1, 2, 3]]).unwrap();
        let r = ImbalanceDetector::ratio(&map, &[10.0, 10.0, 10.0, 10.0]);
        assert!((r - 1.5).abs() < 1e-12, "{r}");
    }
}
