//! A full transformer block on the data plane: pre-norm attention and
//! MoE feed-forward with residual connections, trainable end-to-end —
//! the unit the paper's real-model runs stack (attention + MoE replaces
//! the dense ffn, Fig. 1).
//!
//! ```text
//! y₁ = x  + Attention(LN(x))
//! y₂ = y₁ + MoE(LN(y₁))
//! ```
//!
//! Layer norms use unit gain and zero bias (no learned affine), keeping
//! the hand-written backward compact; the scheduling experiments are
//! unaffected.

use fsmoe::config::MoeConfig;
use fsmoe::layer::{MoeGrads, MoeLayer};
use fsmoe::{MoeError, Result};
use tensor::{grad, Tensor, TensorRng};

use crate::attention::{AttentionGrads, AttentionState, MultiHeadAttention};

const LN_EPS: f32 = 1e-5;

/// Saved forward state of one block.
#[derive(Debug)]
pub struct BlockState {
    x: Tensor,
    ln1: Tensor,
    attn_state: AttentionState,
    y1: Tensor,
    ln2: Tensor,
}

/// Gradients of one block.
#[derive(Debug)]
pub struct BlockGrads {
    /// Gradient with respect to the block input.
    pub input: Tensor,
    /// Attention projection gradients.
    pub attention: AttentionGrads,
    /// MoE expert gradients.
    pub moe: MoeGrads,
}

/// One trainable transformer block: attention + MoE with residuals.
pub struct TransformerBlock {
    attention: MultiHeadAttention,
    moe: MoeLayer,
    state: Option<BlockState>,
}

impl std::fmt::Debug for TransformerBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransformerBlock")
            .field("attention", &self.attention)
            .field("moe", &self.moe)
            .finish()
    }
}

impl TransformerBlock {
    /// Builds a block with a GShard-gated MoE feed-forward.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from either sub-module.
    pub fn new(config: &MoeConfig, heads: usize, rng: &mut TensorRng) -> Result<Self> {
        Ok(TransformerBlock {
            attention: MultiHeadAttention::new(config.embed_dim, heads, rng)?.causal(),
            moe: MoeLayer::gshard(config, rng)?,
            state: None,
        })
    }

    /// The MoE sub-layer (e.g. to inspect routing).
    pub fn moe(&self) -> &MoeLayer {
        &self.moe
    }

    /// The attention sub-layer.
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attention
    }

    /// Runs the block on `(T, M)` tokens.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn forward(&mut self, x: &Tensor, rng: &mut TensorRng) -> Result<Tensor> {
        let ln1 = x.layer_norm(LN_EPS)?;
        let (attn_out, attn_state) = self.attention.forward(&ln1)?;
        let y1 = x.add(&attn_out)?;
        let ln2 = y1.layer_norm(LN_EPS)?;
        let moe_out = self.moe.forward(&ln2, rng)?;
        let y2 = y1.add(&moe_out)?;
        self.state = Some(BlockState {
            x: x.clone(),
            ln1,
            attn_state,
            y1,
            ln2,
        });
        Ok(y2)
    }

    /// Backpropagates through the most recent forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`MoeError::NoForwardState`] before any forward.
    pub fn backward(&mut self, grad_y: &Tensor) -> Result<BlockGrads> {
        let state = self.state.take().ok_or(MoeError::NoForwardState)?;
        // y2 = y1 + moe(ln2(y1))
        let moe_grads = self.moe.backward(grad_y)?;
        let grad_ln2 = &moe_grads.input;
        let grad_y1 = grad_y.add(&grad::layer_norm_backward(grad_ln2, &state.y1, LN_EPS)?)?;
        // y1 = x + attn(ln1(x))
        let attn_grads = self.attention.backward(&grad_y1, &state.attn_state)?;
        let grad_x = grad_y1.add(&grad::layer_norm_backward(
            &attn_grads.input,
            &state.x,
            LN_EPS,
        )?)?;
        let _ = (&state.ln1, &state.ln2);
        self.state = Some(state);
        Ok(BlockGrads {
            input: grad_x,
            attention: attn_grads,
            moe: moe_grads,
        })
    }

    /// SGD step on every parameter of the block.
    ///
    /// # Errors
    ///
    /// Returns an error on gradient arity mismatch.
    pub fn apply_grads(&mut self, grads: &BlockGrads, lr: f32) -> Result<()> {
        self.attention.apply_grads(&grads.attention.weights, lr)?;
        self.moe.apply_grads(&grads.moe, lr)
    }
}

/// A stack of transformer blocks — a trainable MoE "model".
pub struct MoeTransformer {
    blocks: Vec<TransformerBlock>,
}

impl std::fmt::Debug for MoeTransformer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MoeTransformer({} blocks)", self.blocks.len())
    }
}

impl MoeTransformer {
    /// Builds `layers` identical blocks.
    ///
    /// # Errors
    ///
    /// Propagates block construction errors.
    pub fn new(
        config: &MoeConfig,
        heads: usize,
        layers: usize,
        rng: &mut TensorRng,
    ) -> Result<Self> {
        let blocks = (0..layers)
            .map(|_| TransformerBlock::new(config, heads, rng))
            .collect::<Result<Vec<_>>>()?;
        Ok(MoeTransformer { blocks })
    }

    /// Number of blocks.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }

    /// The blocks, for inspection.
    pub fn blocks(&self) -> &[TransformerBlock] {
        &self.blocks
    }

    /// Full forward pass.
    ///
    /// # Errors
    ///
    /// Propagates block errors.
    pub fn forward(&mut self, x: &Tensor, rng: &mut TensorRng) -> Result<Tensor> {
        let mut fwd_span = obs::span(obs::names::CAT_MODELS, obs::names::SPAN_MODEL_FORWARD);
        fwd_span.attr("blocks", self.blocks.len());
        let mut h = x.clone();
        for block in &mut self.blocks {
            h = block.forward(&h, rng)?;
        }
        Ok(h)
    }

    /// One SGD training step against an MSE regression target; returns
    /// the loss before the step.
    ///
    /// # Errors
    ///
    /// Propagates block errors.
    pub fn train_step(
        &mut self,
        x: &Tensor,
        target: &Tensor,
        lr: f32,
        rng: &mut TensorRng,
    ) -> Result<f32> {
        let mut step_span = obs::span(obs::names::CAT_MODELS, obs::names::SPAN_TRAIN_STEP);
        let y = self.forward(x, rng)?;
        let err = y.sub(target)?;
        let loss = err.map(|v| v * v).mean();
        let mut grad = err.scale(2.0 / y.num_elements() as f32);
        {
            let _bwd = obs::span(obs::names::CAT_MODELS, obs::names::SPAN_MODEL_BACKWARD);
            for block in self.blocks.iter_mut().rev() {
                let grads = block.backward(&grad)?;
                grad = grads.input.clone();
                block.apply_grads(&grads, lr)?;
            }
        }
        step_span.attr("loss", loss);
        Ok(loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MoeConfig {
        MoeConfig::builder()
            .batch_size(1)
            .seq_len(8)
            .embed_dim(8)
            .hidden_dim(16)
            .num_experts(4)
            .top_k(2)
            .no_drop()
            .build()
            .unwrap()
    }

    #[test]
    fn block_preserves_shape() {
        let mut rng = TensorRng::seed_from(1);
        let mut block = TransformerBlock::new(&config(), 2, &mut rng).unwrap();
        let x = rng.normal(&[8, 8], 0.0, 1.0);
        let y = block.forward(&x, &mut rng).unwrap();
        assert_eq!(y.dims(), x.dims());
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn backward_needs_forward() {
        let mut rng = TensorRng::seed_from(2);
        let mut block = TransformerBlock::new(&config(), 2, &mut rng).unwrap();
        assert!(block.backward(&Tensor::zeros(&[8, 8])).is_err());
    }

    #[test]
    fn block_gradient_shapes_line_up() {
        let mut rng = TensorRng::seed_from(3);
        let mut block = TransformerBlock::new(&config(), 2, &mut rng).unwrap();
        let x = rng.normal(&[8, 8], 0.0, 1.0);
        let y = block.forward(&x, &mut rng).unwrap();
        let grads = block.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(grads.input.dims(), x.dims());
        assert_eq!(grads.attention.weights.len(), 4);
        assert_eq!(grads.moe.experts.len(), 4);
    }

    #[test]
    fn transformer_trains_to_lower_loss() {
        let mut rng = TensorRng::seed_from(4);
        let mut model = MoeTransformer::new(&config(), 2, 2, &mut rng).unwrap();
        assert_eq!(model.depth(), 2);
        let x = rng.normal(&[8, 8], 0.0, 1.0);
        let target = rng.normal(&[8, 8], 0.0, 1.0);
        let mut route_rng = TensorRng::seed_from(0);
        let first = model.train_step(&x, &target, 0.2, &mut route_rng).unwrap();
        let mut last = first;
        for _ in 0..8 {
            last = model.train_step(&x, &target, 0.2, &mut route_rng).unwrap();
        }
        assert!(
            last < first * 0.9,
            "loss should fall by >10%: {first} → {last}"
        );
    }

    #[test]
    fn residual_path_passes_gradient_even_for_dropped_tokens() {
        // tight capacity drops tokens in the MoE, but the residual still
        // carries gradient to every input position
        let cfg = MoeConfig::builder()
            .batch_size(1)
            .seq_len(8)
            .embed_dim(8)
            .hidden_dim(16)
            .num_experts(4)
            .top_k(2)
            .capacity_factor(0.3)
            .build()
            .unwrap();
        let mut rng = TensorRng::seed_from(5);
        let mut block = TransformerBlock::new(&cfg, 2, &mut rng).unwrap();
        let x = rng.normal(&[8, 8], 0.0, 1.0);
        let y = block.forward(&x, &mut rng).unwrap();
        let routing = block.moe().last_routing().unwrap();
        assert!(routing.drop_rate() > 0.0);
        let grads = block.backward(&Tensor::ones(y.dims())).unwrap();
        // no token row is entirely zero-gradient
        for row in grads.input.data().chunks(8) {
            assert!(row.iter().any(|v| v.abs() > 1e-9));
        }
    }
}
