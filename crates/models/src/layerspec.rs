//! Per-layer workload specification: attention + MoE.

use collectives::ParallelDims;
use fsmoe::config::MoeConfig;
use fsmoe::spec::{MoeLayerSpec, F32_BYTES};
use simnet::OpCosts;

/// The workload of one transformer layer (attention + MoE) on one GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformerLayerSpec {
    /// Attention forward FLOPs per GPU.
    pub attn_flops: f64,
    /// Dense (DP-replicated, MP-sharded) parameter bytes per GPU —
    /// what Gradient-AllReduce must move for this layer.
    pub dense_param_bytes: f64,
    /// The MoE sub-layer volumes (forward phase).
    pub moe: MoeLayerSpec,
}

impl TransformerLayerSpec {
    /// Derives the workloads from a layer config and parallel layout.
    ///
    /// Attention forward FLOPs per GPU (with `t = B·L` tokens and the
    /// MP group sharding heads): `(8M² + 4LM)·t / N_MP` — four `M×M`
    /// projections plus the score/value batched GEMMs. The head count
    /// does not change FLOPs, only kernel shapes.
    pub fn new(config: &MoeConfig, dims: ParallelDims, heads: usize) -> Self {
        let _ = heads; // shapes only; FLOPs are head-count invariant
        let t = config.tokens() as f64;
        let m = config.embed_dim as f64;
        let l = config.seq_len as f64;
        let attn_flops = (8.0 * m * m + 4.0 * l * m) * t / dims.mp as f64;
        let dense_param_bytes = 4.0 * m * m / dims.mp as f64 * F32_BYTES;
        TransformerLayerSpec {
            attn_flops,
            dense_param_bytes,
            moe: MoeLayerSpec::from_config(config, dims),
        }
    }
}

/// Attention kernels (softmax, small per-head GEMMs, memory-bound
/// reshapes) run well below dense-GEMM peak; Table 2's measured
/// attention rows are ~3x what the raw FLOP count at the GEMM rate
/// predicts on both testbeds, so the same derating is applied here.
const ATTENTION_EFFICIENCY_DERATING: f64 = 3.0;

/// Attention forward time on a cluster: four projection GEMMs' startup
/// plus the FLOP volume at the (derated) GEMM rate.
pub fn attention_forward_time(costs: &OpCosts, spec: &TransformerLayerSpec) -> f64 {
    4.0 * costs.gemm.alpha + ATTENTION_EFFICIENCY_DERATING * spec.attn_flops * costs.gemm.beta
}

/// Attention backward time: twice the forward work (§4.4's rule applies
/// to dense GEMMs too).
pub fn attention_backward_time(costs: &OpCosts, spec: &TransformerLayerSpec) -> f64 {
    2.0 * attention_forward_time(costs, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmoe::config::FfnKind;
    use simnet::Testbed;

    fn spec() -> TransformerLayerSpec {
        let config = MoeConfig::builder()
            .batch_size(4)
            .seq_len(1024)
            .embed_dim(1600)
            .hidden_dim(6400)
            .num_experts(6)
            .top_k(2)
            .capacity_factor(1.2)
            .ffn(FfnKind::Gpt)
            .build()
            .unwrap();
        let dims = ParallelDims {
            dp: 6,
            mp: 8,
            ep: 6,
            esp: 8,
        };
        TransformerLayerSpec::new(&config, dims, 25)
    }

    #[test]
    fn attention_flops_scale_with_mp() {
        let s = spec();
        // doubling MP halves per-GPU attention work
        let config = MoeConfig::builder()
            .batch_size(4)
            .seq_len(1024)
            .embed_dim(1600)
            .hidden_dim(6400)
            .num_experts(6)
            .top_k(2)
            .capacity_factor(1.2)
            .build()
            .unwrap();
        let dims4 = ParallelDims {
            dp: 12,
            mp: 4,
            ep: 6,
            esp: 8,
        };
        let s4 = TransformerLayerSpec::new(&config, dims4, 25);
        assert!((s4.attn_flops / s.attn_flops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn backward_attention_doubles_forward() {
        let costs = Testbed::a().costs;
        let s = spec();
        assert!(
            (attention_backward_time(&costs, &s) - 2.0 * attention_forward_time(&costs, &s)).abs()
                < 1e-12
        );
    }

    #[test]
    fn attention_time_is_milliseconds_scale() {
        // Table 2 reports GPT2 attention ≈ 1.7 ms forward on Testbed A
        let costs = Testbed::a().costs;
        let t = attention_forward_time(&costs, &spec());
        assert!((0.1..50.0).contains(&t), "t = {t} ms");
    }

    #[test]
    fn dense_params_shrink_with_mp() {
        let s = spec();
        let expect = 4.0 * 1600.0 * 1600.0 / 8.0 * 4.0;
        assert!((s.dense_param_bytes - expect).abs() < 1.0);
    }
}
