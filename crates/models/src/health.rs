//! Per-rank health scoring and the gray-failure escalation ladder.
//!
//! A dead rank trips a deadline; a *limping* rank never does — it just
//! makes every step as slow as itself, forever. The [`HealthMonitor`]
//! closes that gap with the same detect-then-restructure pattern the
//! [`ImbalanceDetector`](crate::ImbalanceDetector) applies to data
//! skew, now applied to hardware skew:
//!
//! * every step, each rank's *self time* (step wall time minus its
//!   blocked-rendezvous wait, [`collectives::Communicator::blocked_wait_us`])
//!   is all-reduced so the whole fleet sees one identical vector;
//! * the monitor window-averages those self times and scores each rank
//!   against the fleet median — a healthy rank scores ≈ 1.0, a rank
//!   running at half speed scores ≈ 2.0;
//! * a score that stays above threshold for `sustain` consecutive
//!   steps escalates the rank up the ladder: **log** (first offence) →
//!   **quarantine** (keeps its experts, loses migration-destination
//!   eligibility, hot experts drain off it) → **evict candidate**
//!   (handed to simnet's [`price_gray_failure`] crossover; the trainer
//!   evicts only when the arithmetic says eviction beats limping).
//!
//! Every input is identical on every rank (all-reduced self times, the
//! shared policy) and every rule breaks ties by lowest rank, so the
//! verdicts are SPMD-deterministic: all ranks walk the same ladder at
//! the same step — the property the quarantine drain fence and the
//! eviction vote both rely on.

use fsmoe::reshard::ExpertMap;
use simnet::{price_gray_failure, GrayFailureCost, OpCosts};

use crate::imbalance::MigrationDecision;

/// Knobs for [`HealthMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Sliding-window length (steps) for self-time averaging.
    pub window: usize,
    /// Score (self time over fleet median) above which a rank counts as
    /// degraded. Clamped to ≥ 1.0.
    pub threshold: f64,
    /// Consecutive degraded steps required before escalating.
    pub sustain: usize,
    /// Steps to stay quiet after each escalation (lets the fleet settle
    /// before re-evaluating).
    pub cooldown: usize,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            window: 4,
            threshold: 1.75,
            sustain: 3,
            cooldown: 2,
        }
    }
}

/// One rung of the escalation ladder, emitted by
/// [`HealthMonitor::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealthAction {
    /// First offence: record it, change nothing.
    Log {
        /// The degraded rank.
        rank: usize,
        /// Its score at escalation time.
        score: f64,
    },
    /// Second offence: the rank keeps its experts but loses migration
    /// destination eligibility, and its hot experts should drain off it
    /// ([`drain_decision`]).
    Quarantine {
        /// The degraded rank.
        rank: usize,
        /// Its score at escalation time.
        score: f64,
    },
    /// Already quarantined and still degraded: hand the rank to the
    /// keep-limping-vs-evict pricing. The caller either evicts (and
    /// [`HealthMonitor::reset`]s) or [`HealthMonitor::defer`]s.
    EvictCandidate {
        /// The degraded rank.
        rank: usize,
        /// Its score at escalation time — the `slowdown` input to
        /// [`price_gray_failure`].
        score: f64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Healthy,
    Logged,
    Quarantined,
}

/// Sliding-window per-rank health scorer with sustained-degradation
/// escalation (the ImbalanceDetector pattern, applied to rank speed).
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    world: usize,
    /// Recent per-rank self-time vectors (µs), oldest first (≤ window).
    history: Vec<Vec<f64>>,
    /// Consecutive over-threshold steps, per rank.
    sustained: Vec<usize>,
    /// Each rank's ladder stage.
    stage: Vec<Stage>,
    /// Last computed per-rank scores.
    scores: Vec<f64>,
    /// Fleet-median window-averaged self time (µs) at the last
    /// observation — the trainer's healthy-step baseline.
    median_us: f64,
    /// Remaining quiet steps after the last escalation.
    quiet: usize,
}

impl HealthMonitor {
    /// A monitor over `world` ranks. `window` and `sustain` clamp to
    /// ≥ 1, `threshold` to ≥ 1.0.
    #[must_use]
    pub fn new(world: usize, policy: HealthPolicy) -> Self {
        let policy = HealthPolicy {
            window: policy.window.max(1),
            threshold: policy.threshold.max(1.0),
            sustain: policy.sustain.max(1),
            cooldown: policy.cooldown,
        };
        HealthMonitor {
            policy,
            world,
            history: Vec::new(),
            sustained: vec![0; world],
            stage: vec![Stage::Healthy; world],
            scores: vec![1.0; world],
            median_us: 0.0,
            quiet: 0,
        }
    }

    /// The active policy (post-clamping).
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// `rank`'s score at the last observation (1.0 = median-healthy).
    pub fn score(&self, rank: usize) -> f64 {
        self.scores.get(rank).copied().unwrap_or(1.0)
    }

    /// All per-rank scores at the last observation.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Ranks currently quarantined, ascending.
    pub fn quarantined(&self) -> Vec<usize> {
        self.stage
            .iter()
            .enumerate()
            .filter(|&(_, s)| *s == Stage::Quarantined)
            .map(|(r, _)| r)
            .collect()
    }

    /// Fleet-median window-averaged self time (µs) at the last
    /// observation — what a step costs when nobody limps.
    pub fn median_self_us(&self) -> f64 {
        self.median_us
    }

    /// Feeds one step of (all-reduced, hence fleet-identical) per-rank
    /// self times, µs. Returns the next escalation when some rank's
    /// degradation has been sustained long enough.
    pub fn observe(&mut self, self_times_us: &[f64]) -> Option<HealthAction> {
        if self_times_us.len() != self.world {
            return None; // world changed under us; caller should reset
        }
        self.history.push(self_times_us.to_vec());
        if self.history.len() > self.policy.window {
            self.history.remove(0);
        }

        // Window-averaged self time per rank, then score against the
        // fleet median: the median is robust to the one slow rank
        // dragging a mean.
        let steps = self.history.len() as f64;
        let avg: Vec<f64> = (0..self.world)
            .map(|r| self.history.iter().map(|h| h[r]).sum::<f64>() / steps)
            .collect();
        let mut sorted = avg.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[self.world / 2];
        self.median_us = median;
        self.scores = avg
            .iter()
            .map(|&a| if median > 0.0 { a / median } else { 1.0 })
            .collect();
        if obs::is_enabled() {
            for (r, &s) in self.scores.iter().enumerate() {
                obs::set_gauge(&obs::names::health_score(r), s);
            }
            let worst = self.scores.iter().copied().fold(1.0f64, f64::max);
            obs::set_gauge(obs::names::HEALTH_WORST_SCORE, worst);
        }

        if self.quiet > 0 {
            self.quiet -= 1;
            self.sustained.iter_mut().for_each(|s| *s = 0);
            return None;
        }
        for (r, &score) in self.scores.iter().enumerate() {
            if score > self.policy.threshold {
                self.sustained[r] += 1;
            } else {
                self.sustained[r] = 0;
            }
        }

        // The escalation candidate: sustained long enough, worst score,
        // ties to the lowest rank — identical on every rank.
        let candidate = self
            .sustained
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s >= self.policy.sustain)
            .map(|(r, _)| r)
            .max_by(|&a, &b| self.scores[a].total_cmp(&self.scores[b]).then(b.cmp(&a)))?;
        let score = self.scores[candidate];
        self.sustained[candidate] = 0;
        self.quiet = self.policy.cooldown;
        match self.stage[candidate] {
            Stage::Healthy => {
                self.stage[candidate] = Stage::Logged;
                Some(HealthAction::Log {
                    rank: candidate,
                    score,
                })
            }
            Stage::Logged => {
                self.stage[candidate] = Stage::Quarantined;
                obs::counter_add(obs::names::HEALTH_QUARANTINES, 1);
                Some(HealthAction::Quarantine {
                    rank: candidate,
                    score,
                })
            }
            Stage::Quarantined => Some(HealthAction::EvictCandidate {
                rank: candidate,
                score,
            }),
        }
    }

    /// Records that pricing said keep limping: stay quiet for a
    /// cooldown, then re-evaluate (the candidate stays quarantined).
    pub fn defer(&mut self) {
        self.quiet = self.policy.cooldown.max(1);
    }

    /// Resets for a new (reconfigured) world of `world` ranks: history,
    /// stages and streaks all clear — old-world scores are meaningless
    /// after renumbering.
    pub fn reset(&mut self, world: usize) {
        self.world = world;
        self.history.clear();
        self.sustained = vec![0; world];
        self.stage = vec![Stage::Healthy; world];
        self.scores = vec![1.0; world];
        self.median_us = 0.0;
        self.quiet = 0;
    }
}

/// Plans the hot-expert drain a quarantine triggers: move the lowest
/// quarantined position's heaviest expert (tie → lowest id) to the
/// least-loaded *non-quarantined* position (tie → lowest index).
///
/// Unlike the imbalance planner this does not require the move to
/// improve balance — the point is getting load *off the slow rank*, and
/// a position must merely keep ≥ 1 expert. Inputs are all-reduced loads
/// and the shared map, so the decision is SPMD-deterministic.
#[must_use]
pub fn drain_decision(
    map: &ExpertMap,
    expert_loads: &[f64],
    quarantined: &[usize],
) -> Option<MigrationDecision> {
    let from = quarantined
        .iter()
        .copied()
        .filter(|&p| p < map.n_ep() && map.experts_on(p).len() >= 2)
        .min()?;
    let expert = map
        .experts_on(from)
        .iter()
        .copied()
        .max_by(|&a, &b| expert_loads[a].total_cmp(&expert_loads[b]).then(b.cmp(&a)))?;
    let per_position: Vec<f64> = (0..map.n_ep())
        .map(|p| map.experts_on(p).iter().map(|&e| expert_loads[e]).sum())
        .collect();
    let to = (0..map.n_ep())
        .filter(|p| !quarantined.contains(p))
        .min_by(|&a, &b| per_position[a].total_cmp(&per_position[b]).then(a.cmp(&b)))?;
    if to == from {
        return None;
    }
    Some(MigrationDecision { expert, from, to })
}

/// The keep-limping-vs-evict inputs the trainer hands to simnet when
/// the ladder reaches [`HealthAction::EvictCandidate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayFailurePolicy {
    /// α–β op costs to price the reconfiguration with.
    pub costs: OpCosts,
    /// How many future steps the comparison amortizes over.
    pub horizon_steps: usize,
    /// Orphaned expert bytes an eviction would move.
    pub moved_bytes: f64,
    /// Snapshot bytes every survivor would reload.
    pub checkpoint_bytes: f64,
}

impl GrayFailurePolicy {
    /// Prices the crossover for the current fleet state. `replay_steps`
    /// is how far the rollback would rewind (current step minus
    /// snapshot step).
    #[must_use]
    pub fn price(
        &self,
        world: usize,
        healthy_step_ms: f64,
        slowdown: f64,
        replay_steps: usize,
    ) -> GrayFailureCost {
        price_gray_failure(
            &self.costs,
            world,
            healthy_step_ms,
            slowdown,
            self.horizon_steps,
            replay_steps,
            self.moved_bytes,
            self.checkpoint_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            window: 2,
            threshold: 1.5,
            sustain: 2,
            cooldown: 1,
        }
    }

    /// Per-rank self times with `slow` at `factor`× the healthy 100 µs.
    fn step(world: usize, slow: usize, factor: f64) -> Vec<f64> {
        (0..world)
            .map(|r| if r == slow { 100.0 * factor } else { 100.0 })
            .collect()
    }

    #[test]
    fn healthy_fleet_never_escalates() {
        let mut m = HealthMonitor::new(4, policy());
        for _ in 0..20 {
            assert_eq!(m.observe(&step(4, 0, 1.0)), None);
        }
        assert!(m.quarantined().is_empty());
        for r in 0..4 {
            assert!((m.score(r) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sustained_brownout_walks_the_full_ladder() {
        let mut m = HealthMonitor::new(4, policy());
        let mut actions = Vec::new();
        for _ in 0..30 {
            if let Some(a) = m.observe(&step(4, 2, 2.0)) {
                actions.push(a);
            }
            if matches!(actions.last(), Some(HealthAction::EvictCandidate { .. })) {
                break;
            }
        }
        assert!(
            matches!(actions[0], HealthAction::Log { rank: 2, .. }),
            "{actions:?}"
        );
        assert!(
            matches!(actions[1], HealthAction::Quarantine { rank: 2, .. }),
            "{actions:?}"
        );
        assert!(
            matches!(actions[2], HealthAction::EvictCandidate { rank: 2, .. }),
            "{actions:?}"
        );
        assert_eq!(m.quarantined(), vec![2]);
        assert!(m.score(2) > 1.9, "score {}", m.score(2));
    }

    #[test]
    fn transient_spike_resets_the_streak() {
        let mut m = HealthMonitor::new(4, policy());
        // A 2.0× spike scores 2.0 on its own step, but the following
        // healthy step pulls the window average back to the 1.5
        // threshold — the streak resets, so alternating spikes never
        // accumulate the sustain=2 needed to escalate.
        for i in 0..10 {
            let factor = if i % 2 == 0 { 2.0 } else { 1.0 };
            assert_eq!(m.observe(&step(4, 1, factor)), None, "step {i}");
        }
        assert!(m.quarantined().is_empty());
    }

    #[test]
    fn verdicts_are_spmd_identical_across_replicas() {
        // Two monitors fed the same vectors (as all ranks are) must
        // walk the identical ladder at the identical steps.
        let mut a = HealthMonitor::new(4, HealthPolicy::default());
        let mut b = HealthMonitor::new(4, HealthPolicy::default());
        for i in 0..40 {
            let factor = if i % 7 == 0 { 1.0 } else { 2.2 };
            let v = step(4, 3, factor);
            assert_eq!(a.observe(&v), b.observe(&v), "step {i}");
        }
        assert_eq!(a.quarantined(), b.quarantined());
        assert_eq!(a.scores(), b.scores());
    }

    #[test]
    fn defer_keeps_the_quarantine_but_delays_re_escalation() {
        let mut m = HealthMonitor::new(4, policy());
        let mut evict_seen = 0;
        for _ in 0..40 {
            if let Some(HealthAction::EvictCandidate { rank: 0, .. }) = m.observe(&step(4, 0, 2.0))
            {
                evict_seen += 1;
                m.defer();
                if evict_seen == 2 {
                    break;
                }
            }
        }
        assert_eq!(evict_seen, 2, "deferred candidate must re-fire");
        assert_eq!(m.quarantined(), vec![0]);
    }

    #[test]
    fn reset_clears_everything_for_the_new_world() {
        let mut m = HealthMonitor::new(4, policy());
        for _ in 0..20 {
            let _ = m.observe(&step(4, 2, 2.0));
        }
        assert!(!m.quarantined().is_empty());
        m.reset(3);
        assert!(m.quarantined().is_empty());
        assert_eq!(m.scores(), &[1.0, 1.0, 1.0]);
        assert_eq!(m.observe(&step(3, 0, 1.0)), None);
    }

    #[test]
    fn world_size_mismatch_is_ignored_not_fatal() {
        let mut m = HealthMonitor::new(4, policy());
        assert_eq!(m.observe(&[1.0, 2.0]), None);
    }

    #[test]
    fn drain_moves_the_heaviest_expert_to_a_healthy_position() {
        let map = ExpertMap::block(8, 4).unwrap();
        // Position 3 (experts 6, 7) is quarantined; expert 7 is hotter.
        let mut loads = vec![1.0; 8];
        loads[7] = 10.0;
        loads[0] = 5.0; // position 0 is busiest of the healthy ones
        let d = drain_decision(&map, &loads, &[3]).expect("drainable");
        assert_eq!(d.expert, 7);
        assert_eq!(d.from, 3);
        assert_eq!(d.to, 1, "least-loaded healthy position, tie → lowest");
    }

    #[test]
    fn drain_never_targets_a_quarantined_position() {
        let map = ExpertMap::block(8, 4).unwrap();
        let loads = vec![1.0; 8];
        let d = drain_decision(&map, &loads, &[0, 1]).expect("drainable");
        assert_eq!(d.from, 0, "lowest quarantined position drains first");
        assert!(d.to == 2 || d.to == 3, "destination must be healthy");
    }

    #[test]
    fn drain_refuses_to_empty_a_single_expert_position() {
        let map = ExpertMap::from_lists(vec![vec![0], vec![1, 2]]).unwrap();
        assert_eq!(drain_decision(&map, &[9.0, 1.0, 1.0], &[0]), None);
    }

    #[test]
    fn gray_policy_prices_through_to_simnet() {
        let costs = simnet::Testbed::a().costs;
        let policy = GrayFailurePolicy {
            costs,
            horizon_steps: 1000,
            moved_bytes: 1e6,
            checkpoint_bytes: 4e6,
        };
        assert!(policy.price(4, 10.0, 2.0, 2).eviction_wins());
        assert!(!policy.price(4, 10.0, 1.05, 2).eviction_wins());
    }
}
