//! Real-world model presets (paper §6.4).
//!
//! Only the layer *shapes* matter for scheduling — the embedding size,
//! expert hidden size, head count and layer count; the values follow the
//! public model cards of the models the paper trains (GPT-2 XL, Mixtral
//! 8×7B, Mixtral 8×22B). Layer counts are overridable because the paper
//! shrinks them to fit the testbeds (Mixtral-7B runs with 7 layers on
//! Testbed B; Mixtral-22B with 33 layers on Testbed A).

use collectives::ParallelDims;
use fsmoe::config::{FfnKind, MoeConfig};
use simnet::Testbed;

use crate::layerspec::TransformerLayerSpec;

/// A named model shape plus experiment-level knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPreset {
    /// Human-readable name.
    pub name: String,
    /// Token embedding size `M`.
    pub embed_dim: usize,
    /// Expert hidden size `H`.
    pub hidden_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Transformer (MoE) layers.
    pub layers: usize,
    /// Expert architecture.
    pub ffn: FfnKind,
    /// Samples per GPU.
    pub batch_size: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Experts per token.
    pub top_k: usize,
    /// Capacity factor.
    pub capacity_factor: f64,
}

impl ModelPreset {
    /// GPT2-XL with its feed-forward layers replaced by MoE (the paper's
    /// "MoE model based on GPT-2"): M = 1600, H = 6400, 25 heads.
    pub fn gpt2_xl_moe() -> Self {
        ModelPreset {
            name: "GPT2-XL-MoE".into(),
            embed_dim: 1600,
            hidden_dim: 6400,
            heads: 25,
            layers: 12,
            ffn: FfnKind::Gpt,
            batch_size: 1,
            seq_len: 1024,
            top_k: 2,
            capacity_factor: 1.2,
        }
    }

    /// Mixtral 8×7B: M = 4096, H = 14336, 32 heads, SwiGLU experts.
    pub fn mixtral_7b() -> Self {
        ModelPreset {
            name: "Mixtral-7B".into(),
            embed_dim: 4096,
            hidden_dim: 14336,
            heads: 32,
            layers: 7,
            ffn: FfnKind::Mixtral,
            batch_size: 1,
            seq_len: 1024,
            top_k: 2,
            capacity_factor: 1.2,
        }
    }

    /// Mixtral 8×22B: M = 6144, H = 16384, 48 heads.
    pub fn mixtral_22b() -> Self {
        ModelPreset {
            name: "Mixtral-22B".into(),
            embed_dim: 6144,
            hidden_dim: 16384,
            heads: 48,
            layers: 33,
            ffn: FfnKind::Mixtral,
            batch_size: 1,
            seq_len: 1024,
            top_k: 2,
            capacity_factor: 1.2,
        }
    }

    /// A CPU-sized shape for smoke tests and trace demos: the same
    /// structure as the real presets, small enough that a multi-rank
    /// training iteration finishes in milliseconds.
    pub fn smoke() -> Self {
        ModelPreset {
            name: "Smoke".into(),
            embed_dim: 16,
            hidden_dim: 32,
            heads: 2,
            layers: 1,
            ffn: FfnKind::Gpt,
            batch_size: 1,
            seq_len: 8,
            top_k: 1,
            capacity_factor: 2.0,
        }
    }

    /// Overrides the layer count (the paper trims models per testbed).
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Overrides the sequence length (Fig. 7 varies L).
    pub fn with_seq_len(mut self, seq_len: usize) -> Self {
        self.seq_len = seq_len;
        self
    }

    /// Overrides the per-GPU batch size (Table 2 uses B = 4).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// The paper's parallel layout on a testbed: `N_MP = N_ESP =`
    /// GPUs/node, `N_EP = N_DP = ` node count, experts = nodes (§6.4).
    pub fn dims_for(testbed: &Testbed) -> ParallelDims {
        ParallelDims {
            dp: testbed.nodes,
            mp: testbed.gpus_per_node,
            ep: testbed.nodes,
            esp: testbed.gpus_per_node,
        }
    }

    /// The per-layer MoE configuration on a testbed (one expert per
    /// node, as in the paper's end-to-end runs).
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn moe_config(&self, testbed: &Testbed) -> fsmoe::Result<MoeConfig> {
        self.moe_config_for(testbed.nodes)
    }

    /// The per-layer MoE configuration for an arbitrary expert count —
    /// the CPU smoke-test path (the testbed variant pins experts to
    /// nodes).
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn moe_config_for(&self, num_experts: usize) -> fsmoe::Result<MoeConfig> {
        MoeConfig::builder()
            .batch_size(self.batch_size)
            .seq_len(self.seq_len)
            .embed_dim(self.embed_dim)
            .hidden_dim(self.hidden_dim)
            .num_experts(num_experts)
            .top_k(self.top_k.min(num_experts))
            .capacity_factor(self.capacity_factor)
            .ffn(self.ffn)
            .build()
    }

    /// The per-layer workload spec on a testbed.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn layer_spec(&self, testbed: &Testbed) -> fsmoe::Result<TransformerLayerSpec> {
        let config = self.moe_config(testbed)?;
        Ok(TransformerLayerSpec::new(
            &config,
            Self::dims_for(testbed),
            self.heads,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_shapes_match_model_cards() {
        let gpt = ModelPreset::gpt2_xl_moe();
        assert_eq!(gpt.embed_dim, 1600);
        assert_eq!(gpt.hidden_dim, 4 * 1600);
        assert_eq!(gpt.ffn, FfnKind::Gpt);

        let m7 = ModelPreset::mixtral_7b();
        assert_eq!(m7.embed_dim, 4096);
        assert_eq!(m7.hidden_dim, 14336);
        assert_eq!(m7.ffn, FfnKind::Mixtral);

        let m22 = ModelPreset::mixtral_22b();
        assert_eq!(m22.embed_dim, 6144);
    }

    #[test]
    fn dims_follow_paper_deployment() {
        let a = Testbed::a();
        let d = ModelPreset::dims_for(&a);
        assert_eq!(d.mp, 8);
        assert_eq!(d.esp, 8);
        assert_eq!(d.ep, 6);
        assert_eq!(d.dp, 6);
        assert_eq!(d.mp * d.dp, a.world_size());
        assert_eq!(d.ep * d.esp, a.world_size());
    }

    #[test]
    fn overrides_chain() {
        let p = ModelPreset::mixtral_7b()
            .with_layers(7)
            .with_seq_len(256)
            .with_batch_size(4);
        assert_eq!(p.layers, 7);
        assert_eq!(p.seq_len, 256);
        assert_eq!(p.batch_size, 4);
    }

    #[test]
    fn moe_config_uses_one_expert_per_node() {
        let b = Testbed::b();
        let cfg = ModelPreset::gpt2_xl_moe().moe_config(&b).unwrap();
        assert_eq!(cfg.num_experts, 8);
        assert_eq!(cfg.top_k, 2);
    }
}
