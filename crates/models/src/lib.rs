//! End-to-end MoE model assembly and iteration scheduling.
//!
//! This crate composes everything below it into the paper's evaluation
//! setting: transformer layers (attention + MoE) stacked into real-model
//! shapes (GPT2-XL-MoE, Mixtral-7B, Mixtral-22B), iterated forward and
//! backward under each of the six schedules, with the per-schedule
//! Gradient-AllReduce policy applied across layers — everything the
//! Figs. 6–8 and Tables 2/5/6 experiments need.
//!
//! Layer composition follows the paper's generalized-layer definition
//! (§5.2): one MoE layer plus the dense operations (attention) before
//! the next MoE layer.

pub mod attention;
pub mod block;
pub mod breakdown;
pub mod elastic;
pub mod health;
pub mod imbalance;
pub mod iteration;
pub mod layerspec;
pub mod pipeline;
pub mod presets;
pub mod recovery;
pub mod train;

pub use elastic::{flat_topology, ElasticPolicy, ElasticTrainer};
pub use health::{drain_decision, GrayFailurePolicy, HealthAction, HealthMonitor, HealthPolicy};
pub use imbalance::{ImbalanceDetector, MigrationDecision};
pub use iteration::{build_iteration_graph, iteration_time, plan_iteration, IterationPlan};
pub use layerspec::{attention_backward_time, attention_forward_time, TransformerLayerSpec};
pub use presets::ModelPreset;
pub use recovery::RecoveryDriver;
pub use train::dist_train_step;
