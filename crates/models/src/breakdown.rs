//! Per-operation time breakdown of a transformer layer (Table 2).

use scheduler::{MoePerfModel, Phase};
use simnet::OpCosts;

use crate::layerspec::{attention_backward_time, attention_forward_time, TransformerLayerSpec};

/// One row of the Table 2 breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Operation label.
    pub op: String,
    /// Time, ms.
    pub time: f64,
    /// Share of the phase total.
    pub share: f64,
}

/// The full per-phase breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerBreakdown {
    /// Rows in the paper's column order.
    pub rows: Vec<BreakdownRow>,
    /// Phase total, ms.
    pub total: f64,
}

/// Effective memory bandwidth assumed for the (memory-bound) ordering
/// step, bytes/ms. 400 GB/s ≈ mid-range HBM after scatter inefficiency.
const ORDER_BYTES_PER_MS: f64 = 4.0e8;

/// Computes the Table 2 per-op times for one transformer layer.
///
/// `routing_flops` prices the gate GEMM; the ordering step is modelled
/// as memory-bound on the dispatched bytes.
pub fn layer_breakdown(
    costs: &OpCosts,
    spec: &TransformerLayerSpec,
    routing_flops: f64,
    phase: Phase,
) -> LayerBreakdown {
    let moe = &spec.moe;
    let m = MoePerfModel::new(
        costs, moe.n_a2a, moe.n_ag, moe.n_rs, moe.n_exp, moe.gemms, phase, 0.0,
    );
    let a2a = 2.0 * m.t_a2a(1);
    let ag = m.t_ag(1);
    let rs = m.t_rs(1);
    let experts = m.t_exp(1);
    let routing = costs.gemm.alpha + routing_flops * costs.gemm.beta;
    let order_factor = if phase == Phase::Backward { 2.0 } else { 1.0 };
    let order = order_factor * moe.n_a2a / ORDER_BYTES_PER_MS;
    let attention = match phase {
        Phase::Forward => attention_forward_time(costs, spec),
        Phase::Backward => attention_backward_time(costs, spec),
    };
    let all_reduce = match phase {
        Phase::Forward => 0.0,
        Phase::Backward => costs.all_reduce.time(spec.dense_param_bytes),
    };

    let rows_raw = [
        ("AlltoAll", a2a),
        ("AllReduce", all_reduce),
        ("AllGather", ag),
        ("ReduceScatter", rs),
        ("Experts", experts),
        ("Routing", routing),
        ("Order", order),
        ("Attention", attention),
    ];
    let total: f64 = rows_raw.iter().map(|r| r.1).sum();
    let rows = rows_raw
        .iter()
        .map(|&(op, time)| BreakdownRow {
            op: op.to_string(),
            time,
            share: if total > 0.0 { time / total } else { 0.0 },
        })
        .collect();
    LayerBreakdown { rows, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::ModelPreset;
    use simnet::Testbed;

    fn gpt2_breakdown(phase: Phase) -> LayerBreakdown {
        let tb = Testbed::a();
        let preset = ModelPreset::gpt2_xl_moe().with_batch_size(4);
        let spec = preset.layer_spec(&tb).unwrap();
        let cfg = preset.moe_config(&tb).unwrap();
        let routing_flops = 2.0 * cfg.tokens() as f64 * cfg.embed_dim as f64 * 6.0;
        layer_breakdown(&tb.costs, &spec, routing_flops, phase)
    }

    #[test]
    fn shares_sum_to_one() {
        for phase in [Phase::Forward, Phase::Backward] {
            let b = gpt2_breakdown(phase);
            let sum: f64 = b.rows.iter().map(|r| r.share).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn forward_has_no_allreduce() {
        let b = gpt2_breakdown(Phase::Forward);
        let ar = b.rows.iter().find(|r| r.op == "AllReduce").unwrap();
        assert_eq!(ar.time, 0.0);
        let ar_b = gpt2_breakdown(Phase::Backward);
        let ar_b = ar_b.rows.iter().find(|r| r.op == "AllReduce").unwrap();
        assert!(ar_b.time > 0.0);
    }

    #[test]
    fn communication_dominates_like_table2() {
        // Table 2's headline: communication > 50 % of the layer time
        let b = gpt2_breakdown(Phase::Forward);
        let comm: f64 = b
            .rows
            .iter()
            .filter(|r| {
                matches!(
                    r.op.as_str(),
                    "AlltoAll" | "AllReduce" | "AllGather" | "ReduceScatter"
                )
            })
            .map(|r| r.share)
            .sum();
        assert!(comm > 0.5, "communication share {comm}");
    }

    #[test]
    fn routing_and_order_are_minor() {
        // Table 2: routing ≤ 0.5 %, order ≤ ~2 %
        let b = gpt2_breakdown(Phase::Forward);
        let routing = b.rows.iter().find(|r| r.op == "Routing").unwrap();
        let order = b.rows.iter().find(|r| r.op == "Order").unwrap();
        assert!(routing.share < 0.05, "routing {}", routing.share);
        assert!(order.share < 0.10, "order {}", order.share);
    }

    #[test]
    fn backward_is_slower_than_forward() {
        let f = gpt2_breakdown(Phase::Forward);
        let b = gpt2_breakdown(Phase::Backward);
        assert!(b.total > f.total);
    }
}
