//! Elastic training: surviving *permanent* rank loss.
//!
//! [`RecoveryDriver`](crate::recovery::RecoveryDriver) rolls a
//! single-process layer back to a snapshot; [`ElasticTrainer`] goes
//! further and keeps a *distributed* run alive when a rank dies for
//! good. On a blamable step failure it drives the full elastic
//! pipeline:
//!
//! 1. **blame** — classify the fault onto a dead peer
//!    ([`CommError::RankDown`] names it; timeouts and abandoned ops are
//!    pinned on any peer already known dead);
//! 2. **evict** — survivors agree via
//!    [`Communicator::propose_evict`], which bumps the membership epoch
//!    and fences the old world;
//! 3. **reconfigure** — each survivor rebinds into the shrunken world
//!    ([`Communicator::reconfigured`]) with contiguous ranks;
//! 4. **re-shard** — the dead rank's experts are dealt round-robin
//!    across the survivors ([`ReshardPlan::round_robin`]) and every
//!    survivor restores its (new) expert set from the last snapshot;
//! 5. **resume** — routing RNG and step counter roll back to the
//!    snapshot and training continues on the smaller world.
//!
//! The property that makes this trustworthy (pinned by the elastic
//! tests): a 4-rank run that permanently loses a rank finishes with
//! weights **bit-identical** to a fresh 3-rank run started from the
//! same snapshot. Expert placement is pure data movement, so the
//! survivors' answer is *the* answer.
//!
//! Snapshots are collective ([`DistMoeLayer::checkpoint_global`]): all
//! ranks assemble the full expert set, so any survivor subset can
//! restore any expert. Rank 0 also persists each snapshot to disk when
//! a checkpoint directory is configured; recovery prefers the on-disk
//! copy (the restart path) but falls back to the in-memory snapshot —
//! with a typed error recorded, never a panic or silent zero weights —
//! when the file is truncated, NaN-bearing, or disagrees with memory.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use collectives::{CommError, Communicator, HybridTopology, ParallelDims};
use fsmoe::checkpoint::LayerCheckpoint;
use fsmoe::config::MoeConfig;
use fsmoe::dist::{DistMoeLayer, FaultPolicy};
use fsmoe::reshard::ReshardPlan;
use fsmoe::{MoeError, Result};
use tensor::{Tensor, TensorRng};

use crate::health::{drain_decision, GrayFailurePolicy, HealthAction, HealthMonitor};
use crate::imbalance::{ImbalanceDetector, MigrationDecision};
use crate::train::dist_train_step;

/// The flat elastic topology: one node, `n` GPUs, pure expert+data
/// parallelism (`ep == dp == n`, no MP or ESP sharding). EP position
/// equals rank, which is what lets an evicted *rank* map directly to an
/// evicted *expert-parallel position*.
///
/// # Errors
///
/// Returns an error when `n` is zero.
pub fn flat_topology(n: usize) -> Result<HybridTopology> {
    HybridTopology::new(
        1,
        n,
        ParallelDims {
            dp: n,
            mp: 1,
            ep: n,
            esp: 1,
        },
    )
    .map_err(MoeError::Comm)
}

/// Knobs for the elastic pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticPolicy {
    /// Snapshot every this many steps (the rollback granularity).
    pub snapshot_interval: usize,
    /// Blamable step failures tolerated before driving an eviction.
    pub strikes_to_evict: usize,
    /// How many evictions to survive before giving up and propagating
    /// the failure.
    pub max_evictions: usize,
    /// Deadline for the eviction vote itself (longer than the op
    /// deadline — survivors may reach the vote at different times).
    pub vote_deadline: Duration,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        ElasticPolicy {
            snapshot_interval: 2,
            strikes_to_evict: 1,
            max_evictions: 1,
            vote_deadline: Duration::from_secs(5),
        }
    }
}

/// A consistent distributed snapshot: everything exact replay needs.
#[derive(Debug, Clone)]
struct ElasticSnapshot {
    step: usize,
    checkpoint: LayerCheckpoint,
    route_rng: TensorRng,
}

/// A fault-tolerant distributed training loop that survives permanent
/// rank loss by evict → reconfigure → re-shard → restore → resume.
#[derive(Debug)]
pub struct ElasticTrainer {
    comm: Communicator,
    layer: DistMoeLayer,
    policy: ElasticPolicy,
    route_rng: TensorRng,
    step: usize,
    snapshot: ElasticSnapshot,
    /// Guards against re-snapshotting the step we just rolled back to.
    last_snapshot_step: usize,
    checkpoint_dir: Option<PathBuf>,
    evictions: usize,
    strikes: usize,
    last_fallback: Option<MoeError>,
    rebalancer: Option<ImbalanceDetector>,
    migrations: usize,
    last_migration: Option<MigrationDecision>,
    health: Option<HealthMonitor>,
    gray: Option<GrayFailurePolicy>,
    /// EP positions currently quarantined (ascending, fleet-identical).
    quarantined: Vec<usize>,
    quarantines: usize,
}

/// What the post-step health check decided (internal control flow).
enum HealthOutcome {
    /// Healthy, logged, or quarantined: the step stands.
    Continue,
    /// A live slow rank was evicted; the clock rolled back, replay.
    Evicted,
}

impl ElasticTrainer {
    /// Builds the distributed layer over the flat topology and takes
    /// the initial collective snapshot (all ranks must call together).
    ///
    /// # Errors
    ///
    /// Propagates layer-construction and snapshot failures.
    pub fn new(
        config: &MoeConfig,
        comm: Communicator,
        seed: u64,
        route_rng: TensorRng,
        policy: ElasticPolicy,
    ) -> Result<Self> {
        let topo = flat_topology(comm.world_size())?;
        let layer = DistMoeLayer::gshard(config, &comm, &topo, seed)?;
        let checkpoint = layer.checkpoint_global()?;
        let snapshot = ElasticSnapshot {
            step: 0,
            checkpoint,
            route_rng: route_rng.clone(),
        };
        Ok(ElasticTrainer {
            comm,
            layer,
            policy,
            route_rng,
            step: 0,
            snapshot,
            last_snapshot_step: 0,
            checkpoint_dir: None,
            evictions: 0,
            strikes: 0,
            last_fallback: None,
            rebalancer: None,
            migrations: 0,
            last_migration: None,
            health: None,
            gray: None,
            quarantined: Vec::new(),
            quarantines: 0,
        })
    }

    /// Builds a trainer that *resumes* from `checkpoint` at `step` —
    /// the fresh-world half of the bit-identity property: a new, smaller
    /// world starting from the snapshot a shrunken run rolled back to.
    ///
    /// # Errors
    ///
    /// Propagates layer-construction and restore failures.
    pub fn resume(
        config: &MoeConfig,
        comm: Communicator,
        seed: u64,
        checkpoint: &LayerCheckpoint,
        route_rng: TensorRng,
        step: usize,
        policy: ElasticPolicy,
    ) -> Result<Self> {
        let topo = flat_topology(comm.world_size())?;
        let mut layer = DistMoeLayer::gshard(config, &comm, &topo, seed)?;
        layer.restore_full(checkpoint)?;
        let snapshot = ElasticSnapshot {
            step,
            checkpoint: checkpoint.clone(),
            route_rng: route_rng.clone(),
        };
        Ok(ElasticTrainer {
            comm,
            layer,
            policy,
            route_rng,
            step,
            snapshot,
            last_snapshot_step: step,
            checkpoint_dir: None,
            evictions: 0,
            strikes: 0,
            last_fallback: None,
            rebalancer: None,
            migrations: 0,
            last_migration: None,
            health: None,
            gray: None,
            quarantined: Vec::new(),
            quarantines: 0,
        })
    }

    /// Also persists snapshots to `dir` (rank 0 writes, atomically) and
    /// prefers the on-disk copy during recovery.
    #[must_use]
    pub fn with_checkpoint_dir(mut self, dir: PathBuf) -> Self {
        self.checkpoint_dir = Some(dir);
        self
    }

    /// Replaces the layer's AlltoAll retry/degradation policy.
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.layer.set_fault_policy(policy);
    }

    /// Enables automatic load rebalancing: after every completed step
    /// the fleet-wide expert loads feed `detector`, and a sustained-skew
    /// decision drives an eviction-free hot-expert migration
    /// ([`DistMoeLayer::migrate`]).
    ///
    /// SPMD: every rank must enable rebalancing with an identically
    /// configured detector, or ranks disagree about when to fence.
    #[must_use]
    pub fn with_rebalancing(mut self, detector: ImbalanceDetector) -> Self {
        self.rebalancer = Some(detector);
        self
    }

    /// Arms the gray-failure defense: after every completed step the
    /// per-rank self times (step wall time minus blocked-rendezvous
    /// wait) are all-reduced and fed to `monitor`, and its verdicts
    /// drive the escalation ladder — log, quarantine (hot experts drain
    /// off the slow rank, which also stops being a rebalancing
    /// destination), and finally a *live* eviction once `gray`'s
    /// keep-limping-vs-evict pricing says eviction wins.
    ///
    /// SPMD: every rank must arm an identically configured monitor and
    /// policy, or ranks walk different ladders and the vote never
    /// converges.
    #[must_use]
    pub fn with_health(mut self, monitor: HealthMonitor, gray: GrayFailurePolicy) -> Self {
        self.health = Some(monitor);
        self.gray = Some(gray);
        self
    }

    /// The health monitor, when armed (scores reflect the last step).
    pub fn health(&self) -> Option<&HealthMonitor> {
        self.health.as_ref()
    }

    /// EP positions currently quarantined, ascending.
    pub fn quarantined(&self) -> &[usize] {
        &self.quarantined
    }

    /// Quarantine escalations taken so far.
    pub fn quarantines(&self) -> usize {
        self.quarantines
    }

    /// Eviction-free expert migrations completed so far.
    pub fn migrations(&self) -> usize {
        self.migrations
    }

    /// The most recent migration decision acted on, if any.
    pub fn last_migration(&self) -> Option<MigrationDecision> {
        self.last_migration
    }

    /// The wrapped distributed layer.
    pub fn layer(&self) -> &DistMoeLayer {
        &self.layer
    }

    /// The current communicator (replaced on reconfiguration).
    pub fn comm(&self) -> &Communicator {
        &self.comm
    }

    /// Steps completed (rolled back on recovery).
    pub fn step(&self) -> usize {
        self.step
    }

    /// The step of the latest snapshot.
    pub fn last_snapshot_step(&self) -> usize {
        self.snapshot.step
    }

    /// Evictions survived so far.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// The routing RNG as of now (cloned; used by the bit-identity
    /// tests to seed a fresh-world resume).
    pub fn route_rng(&self) -> TensorRng {
        self.route_rng.clone()
    }

    /// Token assignments dropped by graceful degradation — preserved
    /// across re-sharding, counted exactly once per lost exchange.
    pub fn dropped_tokens(&self) -> usize {
        self.layer.dropped_tokens()
    }

    /// The typed error behind the most recent disk-checkpoint fallback,
    /// if recovery ever had to distrust the on-disk copy.
    pub fn last_fallback(&self) -> Option<&MoeError> {
        self.last_fallback.as_ref()
    }

    /// Assembles the full layer checkpoint collectively (all live ranks
    /// must call together).
    ///
    /// # Errors
    ///
    /// Propagates collective failures.
    pub fn full_checkpoint(&self) -> Result<LayerCheckpoint> {
        self.layer.checkpoint_global()
    }

    fn snapshot_path(&self, step: usize) -> Option<PathBuf> {
        self.checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("elastic-step-{step}.json")))
    }

    fn maybe_snapshot(&mut self) -> Result<()> {
        if !self.step.is_multiple_of(self.policy.snapshot_interval)
            || self.step == self.last_snapshot_step
        {
            return Ok(());
        }
        let mut span = obs::span(obs::names::CAT_MODELS, obs::names::SPAN_SNAPSHOT);
        span.attr("step", self.step);
        let checkpoint = self.layer.checkpoint_global()?;
        if self.comm.rank() == 0 {
            if let Some(path) = self.snapshot_path(self.step) {
                checkpoint.save(&path)?;
            }
        }
        self.snapshot = ElasticSnapshot {
            step: self.step,
            checkpoint,
            route_rng: self.route_rng.clone(),
        };
        self.last_snapshot_step = self.step;
        Ok(())
    }

    /// Pins a step failure on a dead peer, if the fault is the kind a
    /// dead peer causes. `RankDown` names the culprit directly; a
    /// timeout, abandoned exchange, poisoned group, or fenced world is
    /// blamed on any peer already known dead. Everything else (shape
    /// errors, local faults) is unblamable and propagates.
    fn blame(&self, err: &MoeError) -> Option<usize> {
        let comm_err = match err {
            MoeError::Comm(e) => e,
            _ => return None,
        };
        match comm_err {
            CommError::RankDown { rank } if *rank != self.comm.rank() => Some(*rank),
            CommError::Timeout { .. }
            | CommError::Abandoned { .. }
            | CommError::Poisoned { .. }
            | CommError::Reconfigured { .. } => {
                (0..self.comm.world_size()).find(|&r| r != self.comm.rank() && self.comm.is_dead(r))
            }
            // This rank itself is down, a lost eviction or migration
            // race, or a structural/config error: no peer to blame,
            // propagate.
            CommError::RankDown { .. }
            | CommError::EvictConflict { .. }
            | CommError::MigrationConflict { .. }
            | CommError::RankOutOfRange { .. }
            | CommError::InvalidGroup { .. }
            | CommError::NotAMember { .. }
            | CommError::BadBufferLength { .. }
            | CommError::BadParallelism { .. } => None,
        }
    }

    /// Loads the recovery checkpoint, preferring the on-disk snapshot.
    /// A truncated, NaN-bearing, missing, or memory-disagreeing file
    /// records a typed fallback (and the `elastic.checkpoint_fallbacks`
    /// counter) and yields the in-memory snapshot instead — recovery
    /// never panics on a bad file and never restores garbage.
    fn load_recovery_checkpoint(&mut self) -> LayerCheckpoint {
        if let Some(path) = self.snapshot_path(self.snapshot.step) {
            if path.exists() {
                match LayerCheckpoint::load(&path) {
                    Ok(ck) if ck == self.snapshot.checkpoint => return ck,
                    Ok(_) => self.note_fallback(MoeError::CorruptCheckpoint {
                        reason: format!(
                            "on-disk snapshot for step {} disagrees with memory",
                            self.snapshot.step
                        ),
                    }),
                    Err(e) => self.note_fallback(e),
                }
            }
        }
        self.snapshot.checkpoint.clone()
    }

    fn note_fallback(&mut self, err: MoeError) {
        obs::counter_add(obs::names::ELASTIC_CHECKPOINT_FALLBACKS, 1);
        self.last_fallback = Some(err);
    }

    /// The full elastic pipeline: evict `victim`, rebind into the
    /// shrunken world, deal its experts across the survivors, restore
    /// from the last snapshot, and roll the clock back to it.
    fn recover_from_eviction(&mut self, victim: usize) -> Result<()> {
        let mut span = obs::span(obs::names::CAT_MODELS, obs::names::SPAN_ELASTIC_RECONFIGURE);
        span.attr("victim", victim);
        span.attr("from_step", self.step);
        let mut vote_comm = self.comm.clone();
        vote_comm.set_deadline(Some(self.policy.vote_deadline));
        let epoch = match vote_comm.propose_evict(victim) {
            Ok(epoch) => epoch,
            // Another handle already drove the world past us — rebind.
            Err(CommError::Reconfigured { epoch }) => epoch,
            Err(e) => return Err(MoeError::Comm(e)),
        };
        let new_comm = self.comm.reconfigured().map_err(MoeError::Comm)?;
        span.attr("epoch", epoch);
        span.attr("survivors", new_comm.world_size());
        // Flat topology: the evicted rank IS the evicted EP position.
        // The uneven deal matters on the gray-failure path: a
        // quarantine drain thins the victim's list before eviction, so
        // its orphan count rarely divides over the survivors.
        let plan = ReshardPlan::round_robin_uneven(self.layer.expert_map(), victim)?;
        let checkpoint = self.load_recovery_checkpoint();
        let topo = flat_topology(new_comm.world_size())?;
        self.layer.reshard(&plan, &checkpoint, &new_comm, &topo)?;
        self.comm = new_comm;
        self.route_rng = self.snapshot.route_rng.clone();
        self.step = self.snapshot.step;
        self.last_snapshot_step = self.snapshot.step;
        self.evictions += 1;
        self.strikes = 0;
        Ok(())
    }

    /// After a completed step: all-reduce this rank's expert loads so
    /// every rank sees identical fleet-wide totals, feed the detector,
    /// and on a sustained-skew decision migrate the hot expert. A
    /// migration that loses its fence to a concurrent eviction
    /// ([`CommError::MigrationConflict`]) is skipped, not fatal — the
    /// eviction path owns recovery and the detector re-fires after its
    /// cooldown.
    fn maybe_rebalance(&mut self) -> Result<()> {
        if self.rebalancer.is_none() {
            return Ok(());
        }
        // Per-rank routings differ; the decision must not. Summing over
        // the world gives every rank the same detector input.
        let Some(loads) = self.fleet_loads()? else {
            return Ok(());
        };
        let Some(detector) = self.rebalancer.as_mut() else {
            return Ok(());
        };
        // Quarantined positions are off-limits as destinations: the
        // rebalancer must not pile load back onto a slow rank.
        let Some(decision) =
            detector.observe_excluding(self.layer.expert_map(), &loads, &self.quarantined)
        else {
            return Ok(());
        };
        self.apply_migration(decision)
    }

    /// Executes a fenced migration, tolerating a lost fence race
    /// ([`CommError::MigrationConflict`] — the eviction path owns
    /// recovery and the decision re-fires later).
    fn apply_migration(&mut self, decision: MigrationDecision) -> Result<()> {
        match self.layer.migrate(decision.expert, decision.to, &self.comm) {
            Ok(()) => {
                self.migrations += 1;
                self.last_migration = Some(decision);
                Ok(())
            }
            Err(MoeError::Comm(CommError::MigrationConflict { .. })) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// All-reduces fleet-wide expert loads (identical on every rank).
    fn fleet_loads(&self) -> Result<Option<Vec<f64>>> {
        let Some(routing) = self.layer.last_routing() else {
            return Ok(None);
        };
        let mut local: Vec<f32> = routing.expert_loads().iter().map(|&l| l as f32).collect();
        self.comm
            .world_group()
            .all_reduce(&mut local)
            .map_err(MoeError::Comm)?;
        Ok(Some(local.iter().map(|&l| f64::from(l)).collect()))
    }

    /// Drains one hot expert off the lowest quarantined position onto
    /// the least-loaded healthy one ([`drain_decision`]).
    fn drain_quarantined(&mut self) -> Result<()> {
        let Some(loads) = self.fleet_loads()? else {
            return Ok(());
        };
        let Some(decision) = drain_decision(self.layer.expert_map(), &loads, &self.quarantined)
        else {
            return Ok(());
        };
        self.apply_migration(decision)
    }

    /// The post-step health check: all-reduce per-rank self times so
    /// every rank scores the identical vector, then walk the ladder on
    /// the monitor's verdict. Runs only when health is armed, and every
    /// branch is SPMD-deterministic.
    ///
    /// Returns `Err(RankDown{me})` when *this* rank is the priced-out
    /// victim: peers evict it, and the canonical self-down error tells
    /// the caller to stop stepping — exactly what a dead rank's caller
    /// sees.
    fn maybe_check_health(&mut self, self_us: f64) -> Result<HealthOutcome> {
        if self.health.is_none() {
            return Ok(HealthOutcome::Continue);
        }
        let me = self.comm.rank();
        let mut v = vec![0.0f32; self.comm.world_size()];
        v[me] = self_us as f32;
        self.comm
            .world_group()
            .all_reduce(&mut v)
            .map_err(MoeError::Comm)?;
        let times: Vec<f64> = v.iter().map(|&t| f64::from(t)).collect();
        let Some(monitor) = self.health.as_mut() else {
            return Ok(HealthOutcome::Continue);
        };
        match monitor.observe(&times) {
            None | Some(HealthAction::Log { .. }) => Ok(HealthOutcome::Continue),
            Some(HealthAction::Quarantine { rank, .. }) => {
                if !self.quarantined.contains(&rank) {
                    self.quarantined.push(rank);
                    self.quarantined.sort_unstable();
                    self.quarantines += 1;
                }
                self.drain_quarantined()?;
                Ok(HealthOutcome::Continue)
            }
            Some(HealthAction::EvictCandidate { rank, score }) => {
                self.consider_eviction(rank, score)
            }
        }
    }

    /// The ladder's last rung: price keep-limping vs evict, and only
    /// evict the live-but-slow rank when the arithmetic says so. Every
    /// pricing input is fleet-identical (all-reduced scores and medians,
    /// the shared config), so all ranks decide alike.
    fn consider_eviction(&mut self, victim: usize, score: f64) -> Result<HealthOutcome> {
        let defer = |health: &mut Option<HealthMonitor>| {
            if let Some(m) = health.as_mut() {
                m.defer();
            }
        };
        let Some(gray) = self.gray else {
            // No pricing policy: never auto-evict a live rank.
            defer(&mut self.health);
            return Ok(HealthOutcome::Continue);
        };
        let healthy_step_ms = self
            .health
            .as_ref()
            .map_or(0.0, HealthMonitor::median_self_us)
            / 1e3;
        let replay_steps = self.step - self.snapshot.step;
        let cost = gray.price(self.comm.world_size(), healthy_step_ms, score, replay_steps);
        if !cost.eviction_wins() || self.evictions >= self.policy.max_evictions {
            defer(&mut self.health);
            return Ok(HealthOutcome::Continue);
        }
        obs::counter_add(obs::names::HEALTH_EVICTIONS, 1);
        if victim == self.comm.rank() {
            return Err(MoeError::Comm(CommError::RankDown { rank: victim }));
        }
        self.recover_from_eviction(victim)?;
        if let Some(m) = self.health.as_mut() {
            m.reset(self.comm.world_size());
        }
        self.quarantined.clear();
        Ok(HealthOutcome::Evicted)
    }

    /// Runs one training step, driving the elastic pipeline when a peer
    /// is down: retried steps replay from the last snapshot on the
    /// surviving world, so a returned loss is always a *completed* step.
    ///
    /// # Errors
    ///
    /// Propagates unblamable failures, and blamable ones once the
    /// eviction budget ([`ElasticPolicy::max_evictions`]) is spent.
    pub fn train_step(&mut self, input: &Tensor, target: &Tensor, lr: f32) -> Result<f32> {
        loop {
            // Self time = step wall time minus time spent blocked in
            // rendezvous waits: a browned-out rank's injected slowness
            // is self time, while its healthy peers mostly accumulate
            // *wait* — which the subtraction removes, so the slow rank
            // stands out instead of dragging everyone's score up.
            let wait_before = self.comm.blocked_wait_us(self.comm.rank());
            let wall_start = Instant::now();
            let result = self
                .maybe_snapshot()
                .and_then(|()| {
                    dist_train_step(&mut self.layer, input, target, lr, &mut self.route_rng)
                })
                .and_then(|loss| self.maybe_rebalance().map(|()| loss));
            let err = match result {
                Ok(loss) => {
                    self.step += 1;
                    self.strikes = 0;
                    let wall_us = wall_start.elapsed().as_micros() as u64;
                    let waited = self
                        .comm
                        .blocked_wait_us(self.comm.rank())
                        .saturating_sub(wait_before);
                    let self_us = wall_us.saturating_sub(waited) as f64;
                    // lint: allow(wallclock-decision) — the per-rank
                    // self time is all-reduced inside maybe_check_health
                    // before any verdict, so every rank scores the same
                    // fleet-wide vector; the wall-clock reading itself
                    // never steers a branch locally.
                    match self.maybe_check_health(self_us)? {
                        HealthOutcome::Continue => return Ok(loss),
                        // The live eviction rolled the clock back to
                        // the snapshot: replay the discarded steps on
                        // the shrunken world.
                        HealthOutcome::Evicted => continue,
                    }
                }
                Err(e) => e,
            };
            let Some(victim) = self.blame(&err) else {
                return Err(err);
            };
            self.strikes += 1;
            if self.strikes < self.policy.strikes_to_evict {
                // Under the strike budget: retry the step as-is (the
                // rollback on eviction erases any RNG drift from failed
                // attempts).
                continue;
            }
            if self.evictions >= self.policy.max_evictions {
                return Err(err);
            }
            self.recover_from_eviction(victim)?;
        }
    }
}
