//! Whole-iteration planning and task-graph construction.
//!
//! An iteration is: forward through `n` transformer layers (attention →
//! MoE), then backward in reverse (MoE → attention), with the schedule's
//! Gradient-AllReduce policy deciding where each layer's dense-gradient
//! AllReduce rides:
//!
//! * DS-MoE / Tutel — all of it after backward finishes;
//! * Tutel-Improved — alongside the *next* layer's attention backward
//!   (dense parts only, Fig. 3b);
//! * PipeMoE+Lina — fixed 30 MB buckets squeezed behind MoE dispatches;
//! * FSMoE(-No-IIO) — the §5 adaptive partition, sized per layer by the
//!   inverse AllReduce model and differential evolution.

use baselines::{lower_moe_layer, ScheduleKind, LINA_CHUNK_BYTES};
use numopt::DeConfig;
use scheduler::{partition_gradients, GeneralizedLayer, MoePerfModel, Phase, StreamSet};
use simnet::{Engine, OpCosts, TaskGraph, Testbed};

use crate::layerspec::{attention_backward_time, attention_forward_time, TransformerLayerSpec};
use crate::presets::ModelPreset;

/// A fully resolved per-iteration schedule: pipeline degrees and
/// Gradient-AllReduce placement for every layer.
#[derive(Debug, Clone)]
pub struct IterationPlan {
    /// The schedule being planned.
    pub kind: ScheduleKind,
    /// Number of transformer layers.
    pub layers: usize,
    /// Forward-phase MoE performance model (uniform across layers).
    pub fwd_model: MoePerfModel,
    /// Backward-phase models, one per layer in backward execution order
    /// (each carries its `t_gar` budget).
    pub bwd_models: Vec<MoePerfModel>,
    /// Forward pipeline degree.
    pub r_fwd: u32,
    /// Backward pipeline degrees, backward order.
    pub r_bwd: Vec<u32>,
    /// Gradient-AllReduce pieces issued inside each backward MoE layer.
    pub gar_in_moe: Vec<Vec<f64>>,
    /// Pieces issued alongside each layer's attention backward.
    pub gar_with_dense: Vec<Vec<f64>>,
    /// Pieces flushed after backward completes.
    pub gar_tail: Vec<f64>,
    /// Attention forward / backward durations.
    pub attn_fwd: f64,
    /// Attention backward duration.
    pub attn_bwd: f64,
}

/// Resolves pipeline degrees and the Gradient-AllReduce policy for
/// `kind` on a layer stack of `layers` copies of `spec`.
pub fn plan_iteration(
    kind: ScheduleKind,
    costs: &OpCosts,
    spec: &TransformerLayerSpec,
    layers: usize,
) -> IterationPlan {
    let moe = &spec.moe;
    let fwd_model = MoePerfModel::new(
        costs,
        moe.n_a2a,
        moe.n_ag,
        moe.n_rs,
        moe.n_exp,
        moe.gemms,
        Phase::Forward,
        0.0,
    );
    let bwd_base = MoePerfModel::new(
        costs,
        moe.n_a2a,
        moe.n_ag,
        moe.n_rs,
        moe.n_exp,
        moe.gemms,
        Phase::Backward,
        0.0,
    );
    let attn_fwd = attention_forward_time(costs, spec);
    let attn_bwd = attention_backward_time(costs, spec);
    let ar = costs.all_reduce;
    let bytes = spec.dense_param_bytes;

    let mut gar_in_moe = vec![Vec::new(); layers];
    let mut gar_with_dense = vec![Vec::new(); layers];
    let mut gar_tail = Vec::new();
    let mut bwd_models = vec![bwd_base; layers];

    match kind {
        ScheduleKind::DsMoe | ScheduleKind::Tutel | ScheduleKind::FasterMoe => {
            // everything at the end, one AllReduce per layer
            gar_tail = vec![ar.time(bytes); layers];
        }
        ScheduleKind::TutelImproved => {
            // layer i−1's gradient rides the dense window of backward
            // layer i; the last layer's gradient has no window left
            for slot in gar_with_dense.iter_mut().take(layers).skip(1) {
                slot.push(ar.time(bytes));
            }
            gar_tail.push(ar.time(bytes));
        }
        ScheduleKind::PipeMoeLina => {
            // fixed 30 MB buckets behind the MoE dispatches
            let chunk_time = ar.time(LINA_CHUNK_BYTES);
            let mut carry = 0.0f64;
            for slot in gar_in_moe.iter_mut().take(layers).skip(1) {
                carry += bytes;
                while carry >= LINA_CHUNK_BYTES {
                    slot.push(chunk_time);
                    carry -= LINA_CHUNK_BYTES;
                }
            }
            carry += bytes; // last layer's gradient
            if carry > 0.0 {
                gar_tail.push(ar.time(carry));
            }
        }
        ScheduleKind::FsMoeNoIio | ScheduleKind::FsMoe => {
            let gls: Vec<GeneralizedLayer> = (0..layers)
                .map(|_| GeneralizedLayer {
                    moe: bwd_base,
                    t_olp_dense: attn_bwd,
                    grad_bytes: bytes,
                })
                .collect();
            let de = DeConfig {
                population: 12,
                generations: 40,
                seed: 0xF5,
                ..DeConfig::default()
            };
            let partition = partition_gradients(&gls, ar, de);
            for i in 0..layers {
                if partition.t_gar[i] > 0.0 {
                    gar_in_moe[i].push(partition.t_gar[i]);
                    bwd_models[i] = bwd_base.with_t_gar(partition.t_gar[i]);
                }
            }
        }
    }

    let r_fwd = kind.pipeline_degree(&fwd_model);
    let r_bwd = bwd_models.iter().map(|m| kind.pipeline_degree(m)).collect();
    IterationPlan {
        kind,
        layers,
        fwd_model,
        bwd_models,
        r_fwd,
        r_bwd,
        gar_in_moe,
        gar_with_dense,
        gar_tail,
        attn_fwd,
        attn_bwd,
    }
}

/// Lowers a plan to a simulatable task graph.
pub fn build_iteration_graph(plan: &IterationPlan) -> (TaskGraph, StreamSet) {
    let mut graph = TaskGraph::new();
    let streams = StreamSet::add_to(&mut graph);
    let mut prev: Vec<simnet::TaskId> = Vec::new();

    // Forward.
    for l in 0..plan.layers {
        let attn = graph.add_task(format!("f{l}.attn"), streams.compute, plan.attn_fwd, &prev);
        let lowered = lower_moe_layer(
            plan.kind,
            &mut graph,
            &streams,
            &plan.fwd_model,
            plan.r_fwd,
            &[],
            &[attn],
            &format!("f{l}.moe"),
        );
        prev = lowered.outputs;
    }

    // Backward (index i counts backward execution order). A plan whose
    // backward vectors are empty lowers a forward-only graph.
    for i in 0..plan.bwd_models.len() {
        let lowered = lower_moe_layer(
            plan.kind,
            &mut graph,
            &streams,
            &plan.bwd_models[i],
            plan.r_bwd[i],
            &plan.gar_in_moe[i],
            &prev,
            &format!("b{i}.moe"),
        );
        let attn = graph.add_task(
            format!("b{i}.attn"),
            streams.compute,
            plan.attn_bwd,
            &lowered.outputs,
        );
        prev = vec![attn];
        for (j, &t) in plan.gar_with_dense[i].iter().enumerate() {
            // occupies the inter-node stream alongside the dense
            // backward; later layers contend via issue order, they do
            // not data-depend on it
            let _ = graph.add_task(format!("b{i}.gar{j}"), streams.inter, t, &lowered.outputs);
        }
    }

    // Tail flush.
    for (j, &t) in plan.gar_tail.iter().enumerate() {
        let gar = graph.add_task(format!("tail.gar{j}"), streams.inter, t, &prev);
        prev = vec![gar];
    }

    (graph, streams)
}

/// Simulated time of one training iteration of `preset` on `testbed`
/// under `kind`, ms.
///
/// # Errors
///
/// Propagates model-configuration errors.
pub fn iteration_time(
    kind: ScheduleKind,
    testbed: &Testbed,
    preset: &ModelPreset,
) -> fsmoe::Result<f64> {
    let spec = preset.layer_spec(testbed)?;
    let plan = plan_iteration(kind, &testbed.costs, &spec, preset.layers);
    let (graph, _) = build_iteration_graph(&plan);
    Ok(Engine::new()
        .simulate(&graph)
        .expect("builder graphs simulate")
        .makespan())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(testbed: &Testbed, preset: &ModelPreset) -> Vec<(ScheduleKind, f64)> {
        ScheduleKind::ALL
            .iter()
            .map(|&k| (k, iteration_time(k, testbed, preset).unwrap()))
            .collect()
    }

    #[test]
    fn schedule_ordering_holds_on_gpt2_testbed_b() {
        let tb = Testbed::b();
        let preset = ModelPreset::gpt2_xl_moe().with_seq_len(256).with_layers(6);
        let t: std::collections::BTreeMap<ScheduleKind, f64> =
            times(&tb, &preset).into_iter().collect();
        let ds = t[&ScheduleKind::DsMoe];
        let tutel = t[&ScheduleKind::Tutel];
        let improved = t[&ScheduleKind::TutelImproved];
        let fsmoe = t[&ScheduleKind::FsMoe];
        let noiio = t[&ScheduleKind::FsMoeNoIio];
        assert!(tutel <= ds * 1.001, "Tutel {tutel} vs DS {ds}");
        assert!(
            improved <= tutel * 1.001,
            "Improved {improved} vs Tutel {tutel}"
        );
        assert!(
            noiio <= improved * 1.01,
            "NoIIO {noiio} vs Improved {improved}"
        );
        assert!(fsmoe <= noiio * 1.001, "FSMoE {fsmoe} vs NoIIO {noiio}");
        assert!(fsmoe < ds, "FSMoE must strictly beat DS-MoE");
    }

    #[test]
    fn fsmoe_speedup_magnitude_is_sane() {
        let tb = Testbed::a();
        let preset = ModelPreset::mixtral_7b().with_layers(4);
        let ds = iteration_time(ScheduleKind::DsMoe, &tb, &preset).unwrap();
        let fs = iteration_time(ScheduleKind::FsMoe, &tb, &preset).unwrap();
        let speedup = ds / fs;
        assert!(
            (1.02..6.0).contains(&speedup),
            "speedup {speedup} out of plausible band"
        );
    }

    #[test]
    fn makespan_scales_with_layers() {
        let tb = Testbed::b();
        let small = ModelPreset::gpt2_xl_moe().with_layers(2).with_seq_len(256);
        let large = ModelPreset::gpt2_xl_moe().with_layers(8).with_seq_len(256);
        for kind in [ScheduleKind::DsMoe, ScheduleKind::FsMoe] {
            let t2 = iteration_time(kind, &tb, &small).unwrap();
            let t8 = iteration_time(kind, &tb, &large).unwrap();
            assert!(t8 > 3.0 * t2, "{kind}: {t8} vs {t2}");
        }
    }

    #[test]
    fn lina_lands_between_tutel_and_fsmoe_usually() {
        let tb = Testbed::b();
        let preset = ModelPreset::gpt2_xl_moe().with_seq_len(256).with_layers(6);
        let t: std::collections::BTreeMap<ScheduleKind, f64> =
            times(&tb, &preset).into_iter().collect();
        // Lina must at least beat leaving all gradients to the end
        assert!(t[&ScheduleKind::PipeMoeLina] <= t[&ScheduleKind::Tutel] * 1.001);
    }

    #[test]
    fn plan_is_internally_consistent() {
        let tb = Testbed::b();
        let preset = ModelPreset::gpt2_xl_moe().with_seq_len(256).with_layers(4);
        let spec = preset.layer_spec(&tb).unwrap();
        for kind in ScheduleKind::ALL {
            let plan = plan_iteration(kind, &tb.costs, &spec, 4);
            assert_eq!(plan.bwd_models.len(), 4);
            assert_eq!(plan.r_bwd.len(), 4);
            assert!(plan.r_fwd >= 1);
            // total GAR time is positive somewhere for every schedule
            let total: f64 = plan
                .gar_in_moe
                .iter()
                .chain(&plan.gar_with_dense)
                .flatten()
                .sum::<f64>()
                + plan.gar_tail.iter().sum::<f64>();
            assert!(total > 0.0, "{kind} lost its gradients");
        }
    }

    #[test]
    fn fsmoe_partitions_conserve_gradient_bytes_in_time() {
        // FSMoE's in-MoE GAR time must price at least the AllReduce of
        // all dense bytes (alpha terms may add per piece)
        let tb = Testbed::b();
        let preset = ModelPreset::gpt2_xl_moe().with_seq_len(256).with_layers(4);
        let spec = preset.layer_spec(&tb).unwrap();
        let plan = plan_iteration(ScheduleKind::FsMoe, &tb.costs, &spec, 4);
        let in_moe: f64 = plan.gar_in_moe.iter().flatten().sum();
        let floor = tb.costs.all_reduce.time(4.0 * spec.dense_param_bytes);
        assert!(in_moe >= floor * 0.8, "{in_moe} vs floor {floor}");
    }
}
